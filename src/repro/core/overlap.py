"""Overlapping-partition exploration — the paper's third future-work item.

    "Further analysis is also necessary to investigate whether assigning
    overlapping cache partitions to the HP and the BEs can benefit some
    workloads." (Section 6)

An overlapping allocation gives HP a small exclusive slice plus a zone both
groups may fill; the zone's ways flow to whoever misses more (the sharing
model of :mod:`repro.sim.llc`). :func:`explore_overlap` sweeps
(exclusive HP ways, overlap ways) for one workload and reports where — if
anywhere — overlap beats the best non-overlapping split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies import StaticPolicy
from repro.experiments.runner import PairResult, run_pair
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.util.tables import format_table
from repro.workloads.mix import make_mix

__all__ = ["OverlapSweep", "explore_overlap", "render_overlap"]


@dataclass(frozen=True)
class OverlapSweep:
    """Results over the (hp_ways, overlap_ways) grid for one workload."""

    hp_name: str
    be_name: str
    #: (hp_exclusive_ways, overlap_ways) -> result.
    results: dict[tuple[int, int], PairResult]

    def best(
        self, *, overlapping: bool | None = None
    ) -> tuple[tuple[int, int], PairResult]:
        """Configuration with the highest EFU among SLO-comparable points.

        ``overlapping=True`` restricts to overlap > 0, ``False`` to the
        plain non-overlapping splits, ``None`` considers everything.
        """
        candidates = {
            k: v
            for k, v in self.results.items()
            if overlapping is None or (k[1] > 0) == overlapping
        }
        if not candidates:
            raise ValueError("no configurations match the filter")
        key = max(candidates, key=lambda k: candidates[k].efu)
        return key, candidates[key]


def explore_overlap(
    hp_name: str,
    be_name: str,
    *,
    n_be: int = 9,
    platform: PlatformConfig = TABLE1_PLATFORM,
    hp_ways_grid: tuple[int, ...] = (1, 2, 4, 6, 8),
    overlap_grid: tuple[int, ...] = (0, 2, 4, 8),
) -> OverlapSweep:
    """Sweep exclusive/overlap combinations for one workload."""
    mix = make_mix(hp_name, be_name, n_be=n_be)
    results: dict[tuple[int, int], PairResult] = {}
    for hp_ways in hp_ways_grid:
        for overlap in overlap_grid:
            if hp_ways + overlap >= platform.llc_ways:
                continue  # must leave >= 1 exclusive BE way
            policy = StaticPolicy(hp_ways, overlap_ways=overlap)
            results[(hp_ways, overlap)] = run_pair(mix, policy, platform)
    return OverlapSweep(hp_name=hp_name, be_name=be_name, results=results)


def render_overlap(sweep: OverlapSweep) -> str:
    """ASCII table of the sweep plus the best-configuration verdict."""
    rows = [
        [hp, ov, r.hp_norm_ipc, r.be_norm_ipc, r.efu]
        for (hp, ov), r in sorted(sweep.results.items())
    ]
    (bh, bo), best_all = sweep.best()
    verdict = (
        f"best: HP={bh}+{bo} shared (EFU {best_all.efu:.3f}; "
        f"HP norm IPC {best_all.hp_norm_ipc:.3f})"
    )
    table = format_table(
        ["HP excl ways", "Overlap ways", "HP norm IPC", "BE norm IPC", "EFU"],
        rows,
        title=(
            f"Overlapping partitions: {sweep.hp_name} + "
            f"BEs {sweep.be_name}"
        ),
    )
    return f"{table}\n{verdict}"
