"""DICER-MBA — the paper's first future-work extension (Section 6).

    "We are extending DICER to explicitly, dynamically control the memory
    bandwidth, using Intel's MBA […]"

Cache partitioning alone cannot help when the *optimal* allocation is still
bandwidth-saturated (ten streaming applications, say): baseline DICER just
stops resampling (the cooldown guard) and lets the link queue. DICER-MBA
adds a second actuator: while saturation persists after a sampling pass it
steps the BEs' Memory Bandwidth Allocation throttle down one level per
period; once the link stays under the threshold it relaxes one level per
quiet period. The cache-partitioning state machine is inherited unchanged.
"""

from __future__ import annotations

from repro.core.allocation import Allocation
from repro.core.config import DicerConfig, TABLE1_DICER_CONFIG
from repro.core.dicer import ControllerMode, DicerController, sample_fault
from repro.core.policies import DicerPolicy
from repro.rdt.sample import PeriodSample

__all__ = ["MbaDicerController", "MbaDicerPolicy", "MBA_LEVELS"]

#: MBA throttle levels (fraction of unthrottled bandwidth), mirroring the
#: coarse delay levels real MBA exposes (100/90/80/... percent classes).
MBA_LEVELS: tuple[float, ...] = (1.0, 0.8, 0.6, 0.4, 0.2)


class MbaDicerController(DicerController):
    """DICER plus progressive BE bandwidth throttling."""

    def __init__(
        self,
        config: DicerConfig,
        total_ways: int,
        levels: tuple[float, ...] = MBA_LEVELS,
    ) -> None:
        super().__init__(config, total_ways)
        if not levels or levels[0] != 1.0:
            raise ValueError("levels must start at 1.0 (unthrottled)")
        if list(levels) != sorted(set(levels), reverse=True):
            raise ValueError("levels must be strictly decreasing")
        self.levels = levels
        self._level_idx = 0
        self._quiet_periods = 0

    @property
    def be_throttle(self) -> float:
        """Current BE MBA level in (0, 1]; 1.0 = unthrottled."""
        return self.levels[self._level_idx]

    def update(self, sample: PeriodSample) -> Allocation:
        """Listing 1-3 update plus the MBA throttle step."""
        allocation = super().update(sample)
        if sample_fault(sample, self.config) is not None:
            # The base controller held this period (implausible sample);
            # the throttle must not act on the same garbage reading.
            return allocation
        saturated = sample.total_mem_bytes_s > self.config.bw_threshold_bytes
        if saturated and self.mode is not ControllerMode.SAMPLING:
            # Sampling already searches the cache axis; throttle only when
            # partitioning has had its chance and the link is still full.
            if self._level_idx < len(self.levels) - 1:
                self._level_idx += 1
            self._quiet_periods = 0
        elif not saturated:
            self._quiet_periods += 1
            if self._quiet_periods >= 2 and self._level_idx > 0:
                self._level_idx -= 1
                self._quiet_periods = 0
        return allocation


class MbaDicerPolicy(DicerPolicy):
    """Policy wrapper: DICER-MBA for the experiment runner.

    The runner reads :attr:`be_throttle` after every update and forwards it
    to backends that support MBA.
    """

    name = "DICER-MBA"

    def setup(self, total_ways: int) -> Allocation | None:
        """Build an MBA-capable controller and return CT."""
        self._controller = MbaDicerController(self.config, total_ways)
        return self._controller.initial_allocation()

    @property
    def be_throttle(self) -> float:
        """Current BE MBA level in (0, 1]; 1.0 = unthrottled."""
        controller = self.controller
        assert isinstance(controller, MbaDicerController)
        return controller.be_throttle

    def fresh(self) -> "MbaDicerPolicy":
        """Stateless copy for the next experiment."""
        return MbaDicerPolicy(self.config)
