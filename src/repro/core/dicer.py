"""The DICER controller — paper Listings 1, 2 and 3 as a state machine.

DICER observes one :class:`~repro.rdt.interface.PeriodSample` per monitoring
period and answers with the HP/BE way split for the next period. It is a
pure state machine: no knowledge of the workload, the simulator, or the
backend — exactly the black-box transparency the paper argues for.

Control flow (Listing 1)::

    every period:  monitor()
                   if BW saturated  -> allocation_sampling()
                   else             -> allocation_optimisation()

* **allocation_sampling** (Section 3.2.1): the first saturation reclassifies
  the workload as CT-Thwarted; DICER probes decreasing HP way counts and
  keeps the one with the highest HP IPC (``optimal_allocation, IPC_opt``).
* **allocation_optimisation** (Listing 2): on a *phase change* (Equation 2)
  reset; on *stable* IPC (Equation 3) donate one HP way to the BEs; on
  improved IPC hold; on degraded IPC reset.
* **allocation_reset** (Listing 3): return to the best-known allocation (CT
  for CT-Favoured, ``optimal_allocation`` for CT-Thwarted) and validate the
  decision against the following period's measurements.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.allocation import Allocation
from repro.core.config import DicerConfig
from repro.obs import get_event_log, get_registry
from repro.rdt.sample import PeriodSample

__all__ = [
    "DicerController",
    "ControllerMode",
    "DecisionRecord",
    "sample_fault",
    "MIN_SAMPLE_DURATION_S",
    "STALE_MIN_DURATION_S",
    "MAX_PLAUSIBLE_IPC",
    "BW_FAULT_FACTOR",
]

# -- measurement plausibility (graceful degradation, DESIGN.md §8) ----------
#
# Real RDT counters fail in well-known ways: MBM/CMT reads can be dropped,
# repeated (stale), or wrap around between two samples, and a zero-length
# read window turns counter diffs into garbage rates. The controller must
# never let such a sample crash the loop or leak into the Equation-2
# bandwidth history, so `sample_fault` classifies implausible samples and
# `update` holds the last decision for the period instead of acting.

#: Periods shorter than this carry no meaningful counter deltas (a zero-dt
#: read). The simulator's own end-of-workload degenerate samples use 1e-9 s
#: and stay *valid* — the floor only rejects genuinely broken reads.
MIN_SAMPLE_DURATION_S = 1e-10
#: A zero IPC over at least this long a window means the instruction
#: counter did not advance — a stale/repeated read, not a running core.
#: (Sub-microsecond windows may legitimately retire nothing.)
STALE_MIN_DURATION_S = 1e-6
#: No core retires this many instructions per cycle; values above it are
#: wrapped/corrupt counters.
MAX_PLAUSIBLE_IPC = 1e6
#: Bandwidth beyond this multiple of the saturation threshold cannot come
#: from the memory link — it is a counter wraparound artefact.
BW_FAULT_FACTOR = 1e3


def sample_fault(sample: PeriodSample, config: DicerConfig) -> str | None:
    """Classify an implausible sample; ``None`` means the sample is usable.

    Returns one of ``"nonfinite"``, ``"zero_dt"``, ``"wrap"`` or
    ``"stale"`` — the fault taxonomy of DESIGN.md §8.
    """
    if not (
        math.isfinite(sample.duration_s)
        and math.isfinite(sample.hp_ipc)
        and math.isfinite(sample.hp_mem_bytes_s)
        and math.isfinite(sample.total_mem_bytes_s)
    ):
        return "nonfinite"
    if sample.duration_s < MIN_SAMPLE_DURATION_S:
        return "zero_dt"
    bw_limit = BW_FAULT_FACTOR * config.bw_threshold_bytes
    if (
        sample.hp_ipc > MAX_PLAUSIBLE_IPC
        or sample.hp_mem_bytes_s > bw_limit
        or sample.total_mem_bytes_s > bw_limit
    ):
        return "wrap"
    if sample.hp_ipc == 0.0 and sample.duration_s >= STALE_MIN_DURATION_S:
        return "stale"
    return None


class ControllerMode(enum.Enum):
    """Top-level state of the DICER state machine."""

    #: First period: measurements exist but no previous IPC to compare to.
    WARMUP = "warmup"
    #: Normal operation (Listing 2).
    OPTIMISE = "optimise"
    #: Probing the sampling grid (Section 3.2.1).
    SAMPLING = "sampling"
    #: One-period validation after a reset (Listing 3).
    RESET_VALIDATE = "reset_validate"


@dataclass(frozen=True)
class DecisionRecord:
    """Telemetry: one controller decision (for traces, tests, examples).

    ``event`` is the *structured* decision kind — one of ``warmup``,
    ``sampling_start`` / ``sampling_dwell`` / ``sampling_probe`` /
    ``sampling_conclude`` / ``sampling_empty``, ``shrink`` / ``floor`` /
    ``hold``, ``reset_ctf`` / ``reset_ctt``, ``validate_ok`` /
    ``validate_rollback`` / ``validate_optimal`` — and is what analysis
    code should branch on. ``note`` is the human-readable rendering of
    the same decision and carries no stability guarantee.
    """

    period: int
    mode: ControllerMode
    hp_ipc: float
    total_bw_bytes_s: float
    saturated: bool
    phase_change: bool
    allocation: Allocation
    note: str = ""
    event: str = ""


@dataclass
class _SamplingState:
    pending: list[int] = field(default_factory=list)
    results: dict[int, float] = field(default_factory=dict)
    dwell_left: int = 0
    active_ways: int | None = None


class DicerController:
    """Dynamic HP/BE cache partitioning per the paper's Listings 1-3."""

    def __init__(self, config: DicerConfig, total_ways: int) -> None:
        if total_ways < 2:
            raise ValueError(f"total_ways must be >= 2, got {total_ways}")
        self.config = config
        self.total_ways = total_ways

        # Listing 1 initial state: assume CT-Favoured, start like CT.
        self.current = Allocation.cache_takeover(total_ways)
        self.optimal = self.current
        self.ipc_opt: float | None = None
        self.ct_favoured = True

        self.mode = ControllerMode.WARMUP
        self._last_ipc: float | None = None
        self._hp_bw_history: deque[float] = deque(maxlen=3)
        self._hp_bw_ewma: float | None = None
        self._sampling = _SamplingState()
        self._reset_trigger_ipc = 0.0
        self._rollback = self.current
        self._cooldown = 0
        self._period = 0
        self._suppress_bw_bookkeeping = False
        #: Optional batch-solve hook: called with the full list of candidate
        #: allocations whenever a sampling sweep starts, BEFORE the first
        #: probe is enforced. The simulated-RDT runner points this at
        #: :meth:`SimulatedRdt.prefetch_allocations` so the whole grid is
        #: solved in one vectorised batch; on real hardware (or when unset)
        #: it stays ``None`` and sampling behaves exactly as before. Purely
        #: an execution-speed hint — it must never change decisions.
        self.prefetch_hook: Callable[[list[Allocation]], object] | None = None
        #: Compatibility surface: the decision history as a plain list of
        #: :class:`DecisionRecord` (what ``trace_tools`` renders). The same
        #: decisions stream through :mod:`repro.obs` as ``dicer.*`` events
        #: when telemetry is enabled.
        self.trace: list[DecisionRecord] = []

    # -- public API ---------------------------------------------------------

    def initial_allocation(self) -> Allocation:
        """The allocation to enforce before the first monitoring period."""
        return self.current

    def update(self, sample: PeriodSample) -> Allocation:
        """Consume one period's measurements; return the next allocation.

        Implausible samples (see :func:`sample_fault`) are inert: the
        period is recorded with ``event="fault"``, the last decision is
        held, and *no* internal state — mode, cooldown, the Equation-2
        bandwidth history, the previous-period IPC — is touched.
        """
        self._period += 1
        fault = sample_fault(sample, self.config)
        if fault is not None:
            self._record_fault(sample, fault)
            return self.current
        raw_saturated = (
            self.config.saturation_detection
            and sample.total_mem_bytes_s > self.config.bw_threshold_bytes
        )
        # The cooldown guard treats "saturated but recently sampled" as not
        # saturated, preventing a sampling livelock when even the optimum
        # operating point exceeds the threshold (see DicerConfig).
        saturated = raw_saturated and self._cooldown == 0
        if self._cooldown > 0:
            self._cooldown -= 1

        phase_change = False
        if self.mode is ControllerMode.SAMPLING:
            event, note = self._step_sampling(sample)
        elif saturated:
            event, note = self._start_sampling()
        elif self.mode is ControllerMode.WARMUP:
            self.mode = ControllerMode.OPTIMISE
            event, note = "warmup", "warmup"
        elif self.mode is ControllerMode.RESET_VALIDATE:
            event, note = self._validate_reset(sample)
        else:
            phase_change, event, note = self._optimise(sample)

        # Bookkeeping AFTER decisions: Equation 2 compares this period's HP
        # bandwidth against the *previous* periods' baseline. The period
        # that concludes sampling is excluded: its bandwidth was measured
        # under the final probe allocation, and folding it in would
        # re-pollute the history _conclude_sampling just cleared.
        if self._suppress_bw_bookkeeping:
            self._suppress_bw_bookkeeping = False
        else:
            self._hp_bw_history.append(sample.hp_mem_bytes_s)
            w = self.config.ewma_weight
            self._hp_bw_ewma = (
                sample.hp_mem_bytes_s
                if self._hp_bw_ewma is None
                else (1.0 - w) * self._hp_bw_ewma + w * sample.hp_mem_bytes_s
            )
        self._last_ipc = sample.hp_ipc

        self.trace.append(
            DecisionRecord(
                period=self._period,
                mode=self.mode,
                hp_ipc=sample.hp_ipc,
                total_bw_bytes_s=sample.total_mem_bytes_s,
                saturated=raw_saturated,
                phase_change=phase_change,
                allocation=self.current,
                note=note,
                event=event,
            )
        )
        self._report(sample, event, note, raw_saturated, phase_change)
        return self.current

    def _record_fault(self, sample: PeriodSample, fault: str) -> None:
        """Log a held (faulty-sample) period into the trace and telemetry."""
        self.trace.append(
            DecisionRecord(
                period=self._period,
                mode=self.mode,
                hp_ipc=sample.hp_ipc,
                total_bw_bytes_s=sample.total_mem_bytes_s,
                saturated=False,
                phase_change=False,
                allocation=self.current,
                note=f"fault: {fault} sample, holding hp={self.current.hp_ways}",
                event="fault",
            )
        )
        registry = get_registry()
        if registry.enabled:
            registry.counter("dicer.faults").inc()
            registry.counter(f"dicer.fault.{fault}").inc()
        log = get_event_log()
        if log.enabled:
            log.emit(
                "dicer.fault",
                period=self._period,
                fault=fault,
                mode=self.mode.value,
                duration_s=sample.duration_s,
                hp_ways=self.current.hp_ways,
            )

    def _report(
        self,
        sample: PeriodSample,
        event: str,
        note: str,
        saturated: bool,
        phase_change: bool,
    ) -> None:
        """Mirror the decision into :mod:`repro.obs` (no-op when disabled)."""
        registry = get_registry()
        if registry.enabled:
            registry.counter("dicer.decisions").inc()
            if phase_change:
                registry.counter("dicer.phase_changes").inc()
            if event in ("reset_ctf", "reset_ctt"):
                registry.counter(f"dicer.{event}").inc()
            elif event in ("sampling_start", "sampling_empty"):
                registry.counter(f"dicer.{event}").inc()
            registry.gauge("dicer.hp_ways").set(self.current.hp_ways)
        log = get_event_log()
        if log.enabled:
            log.emit(
                "dicer.decision",
                period=self._period,
                mode=self.mode.value,
                event=event,
                note=note,
                hp_ipc=round(sample.hp_ipc, 6),
                hp_bw_bytes_s=round(sample.hp_mem_bytes_s, 3),
                total_bw_bytes_s=round(sample.total_mem_bytes_s, 3),
                saturated=saturated,
                phase_change=phase_change,
                hp_ways=self.current.hp_ways,
            )

    # -- Section 3.2.1: allocation sampling ----------------------------------

    def _start_sampling(self) -> tuple[str, str]:
        """First/renewed saturation: reclassify as CT-T and probe the grid."""
        grid = [
            w for w in self.config.sample_hp_ways if w < self.total_ways
        ]
        if not grid:
            # Degenerate caches (e.g. total_ways=2 with a grid tuned for a
            # 20-way LLC) can leave nothing to probe. Sampling a zero-point
            # grid would crash; there is also nothing to learn, so keep
            # optimising with the current allocation. The cooldown stops
            # persistent saturation from re-entering this dead end every
            # period (same livelock guard as a completed sampling pass).
            self.mode = ControllerMode.OPTIMISE
            self._cooldown = self.config.resample_cooldown_periods
            return "sampling_empty", "sampling: grid empty"
        self.ct_favoured = False
        if self.prefetch_hook is not None:
            base = self.current
            self.prefetch_hook([base.with_hp_ways(w) for w in grid])
        self._sampling = _SamplingState(
            pending=grid,
            results={},
            dwell_left=self.config.sample_periods,
            active_ways=None,
        )
        self.mode = ControllerMode.SAMPLING
        self._advance_sampling()
        return "sampling_start", "sampling: start"

    def _advance_sampling(self) -> None:
        state = self._sampling
        state.active_ways = state.pending.pop(0)
        state.dwell_left = self.config.sample_periods
        self.current = self.current.with_hp_ways(state.active_ways)

    def _step_sampling(self, sample: PeriodSample) -> tuple[str, str]:
        state = self._sampling
        assert state.active_ways is not None
        state.dwell_left -= 1
        if state.dwell_left > 0:
            return "sampling_dwell", f"sampling: dwell hp={state.active_ways}"
        # The last dwell period's IPC is the sample's score ("long enough to
        # make the effects of the partitioning visible").
        state.results[state.active_ways] = sample.hp_ipc
        if state.pending:
            self._advance_sampling()
            return "sampling_probe", f"sampling: probe hp={state.active_ways}"
        return self._conclude_sampling()

    def _conclude_sampling(self) -> tuple[str, str]:
        state = self._sampling
        best_ways = max(state.results, key=lambda w: state.results[w])
        self.ipc_opt = state.results[best_ways]
        self.optimal = self.current.with_hp_ways(best_ways)
        self.current = self.optimal
        self.mode = ControllerMode.OPTIMISE
        self._cooldown = self.config.resample_cooldown_periods
        # Sampling distorted HP's bandwidth trajectory; restart Equation 2's
        # history so the next periods are not misread as phase changes. The
        # concluding period's own bandwidth — measured under the final probe
        # allocation — must not re-enter the cleared history either, so the
        # caller's bookkeeping append is suppressed for this period.
        self._hp_bw_history.clear()
        self._hp_bw_ewma = None
        self._suppress_bw_bookkeeping = True
        return (
            "sampling_conclude",
            f"sampling: optimal hp={best_ways} ipc={self.ipc_opt:.3f}",
        )

    # -- Listing 2: allocation optimisation ----------------------------------

    def _phase_change(self, sample: PeriodSample) -> bool:
        """Equation 2: HP bandwidth jump against its recent baseline.

        The paper's statistic is the geometric mean of the previous three
        periods; the ``ewma`` variant substitutes an exponentially weighted
        average (see DicerConfig.phase_detector).
        """
        threshold = 1.0 + self.config.phase_threshold
        if self.config.phase_detector == "ewma":
            baseline = self._hp_bw_ewma
            if baseline is None:
                return False
            return sample.hp_mem_bytes_s > threshold * max(baseline, 1.0)
        if len(self._hp_bw_history) < 3:
            return False
        gmean = math.exp(
            sum(math.log(max(b, 1.0)) for b in self._hp_bw_history) / 3.0
        )
        return sample.hp_mem_bytes_s > threshold * gmean

    def _optimise(self, sample: PeriodSample) -> tuple[bool, str, str]:
        if self._phase_change(sample):
            event, note = self._reset(sample)
            return True, event, note
        assert self._last_ipc is not None
        lo = (1.0 - self.config.alpha) * self._last_ipc
        hi = (1.0 + self.config.alpha) * self._last_ipc
        if lo <= sample.hp_ipc <= hi:
            # Stable: the allocation exceeds HP's needs — donate one way.
            before = self.current.hp_ways
            self.current = self.current.shrink_hp()
            if self.current.hp_ways != before:
                return (
                    False,
                    "shrink",
                    f"stable: shrink hp to {self.current.hp_ways}",
                )
            return False, "floor", "stable: at floor"
        if sample.hp_ipc > hi:
            # Improved: new phase with same cache needs; hold position.
            return False, "hold", "better: hold"
        event, note = self._reset(sample)
        return False, event, note

    # -- Listing 3: allocation reset -----------------------------------------

    def _reset(self, sample: PeriodSample) -> tuple[str, str]:
        self._reset_trigger_ipc = sample.hp_ipc
        if self.ct_favoured:
            self._rollback = self.current
            self.current = Allocation.cache_takeover(self.total_ways)
            self.mode = ControllerMode.RESET_VALIDATE
            return "reset_ctf", "reset: to CT (CT-F)"
        self.current = self.optimal
        self.mode = ControllerMode.RESET_VALIDATE
        return (
            "reset_ctt",
            f"reset: to optimal hp={self.optimal.hp_ways} (CT-T)",
        )

    def _validate_reset(self, sample: PeriodSample) -> tuple[str, str]:
        # Saturation during validation is handled by the caller (it starts
        # sampling before reaching this method), mirroring Listing 3's
        # explicit BW_saturated checks.
        alpha = self.config.alpha
        self.mode = ControllerMode.OPTIMISE
        if self.ct_favoured:
            if sample.hp_ipc > (1.0 + alpha) * self._reset_trigger_ipc:
                return "validate_ok", "validate: CT reset helped"
            # The IPC drop was a phase effect, not an allocation effect.
            self.current = self._rollback
            return (
                "validate_rollback",
                f"validate: rollback hp={self.current.hp_ways}",
            )
        assert self.ipc_opt is not None
        if sample.hp_ipc >= (1.0 - alpha) * self.ipc_opt:
            return "validate_optimal", "validate: back at optimal"
        return self._start_sampling()
