"""Co-location policies: UM, CT, static splits, DICER, and the policy zoo.

A :class:`Policy` is the runner-facing abstraction: it declares whether the
LLC is partitioned at all, the initial allocation, and (for dynamic
policies) a per-period update. UM and CT are the paper's baselines
(Section 2.2); :class:`StaticPolicy` provides the per-way sweep behind
Figure 3; :class:`DicerPolicy` adapts every period via
:class:`~repro.core.dicer.DicerController`.

The policy surface is M-class and three-knob (DESIGN.md "Policy zoo"):

* ``setup``/``update`` may return either the classic HP/BE
  :class:`~repro.core.allocation.Allocation` or an M-group
  :class:`~repro.core.allocation.GroupAllocation` — the runner only calls
  ``to_partition``, so both flow through unchanged (knob 1: CAT ways);
* a policy exposing a ``be_throttle`` attribute steers MBA (knob 2);
* a policy exposing a ``be_prefetch`` attribute steers the prefetch
  throttle (knob 3).

:class:`~repro.core.lfoc.LfocPolicy` (fairness clustering over many
co-equal apps) and :class:`~repro.core.cbp.CbpPolicy` (coordinated
ways + MBA + prefetch) live in their own modules and are re-exported
through :func:`repro.experiments.queue.policy_from_name`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Union

from repro.core.allocation import Allocation, GroupAllocation
from repro.core.config import DicerConfig, TABLE1_DICER_CONFIG
from repro.core.dicer import DicerController
from repro.rdt.sample import PeriodSample

__all__ = [
    "Policy",
    "AnyAllocation",
    "UnmanagedPolicy",
    "CacheTakeoverPolicy",
    "StaticPolicy",
    "DicerPolicy",
]

#: What a policy decision may carry: the classic HP/BE split or an
#: M-group allocation. ``None`` (keep current / stay unmanaged) composes
#: at the call sites.
AnyAllocation = Union[Allocation, GroupAllocation]


class Policy(ABC):
    """A cache-allocation policy for one consolidation experiment."""

    #: Display name used in reports ("UM", "CT", "DICER", ...).
    name: str = "?"

    @abstractmethod
    def setup(self, total_ways: int) -> AnyAllocation | None:
        """Initial allocation; ``None`` means the LLC stays unmanaged.

        M-class policies that need per-core observations before they can
        group anything (LFOC's warmup classification) also return ``None``
        here and emit their first :class:`~repro.core.allocation.
        GroupAllocation` from :meth:`update`.
        """

    def update(self, sample: PeriodSample) -> AnyAllocation | None:
        """Per-period decision; ``None`` means keep the current allocation.

        Only called when :attr:`dynamic` is true.
        """
        return None

    @property
    def dynamic(self) -> bool:
        """Whether the runner must drive a monitoring loop."""
        return False

    @property
    def period_s(self) -> float:
        """Monitoring period for dynamic policies."""
        return 1.0

    def fresh(self) -> "Policy":
        """A stateless copy for the next experiment (overridden by DICER)."""
        return self


class UnmanagedPolicy(Policy):
    """UM: no control over resource sharing, no QoS enforcement."""

    name = "UM"

    def setup(self, total_ways: int) -> Allocation | None:
        """See :meth:`Policy.setup`."""
        return None


class CacheTakeoverPolicy(Policy):
    """CT: HP conservatively takes all but one way; BEs share one way."""

    name = "CT"

    def setup(self, total_ways: int) -> Allocation | None:
        """See :meth:`Policy.setup`."""
        return Allocation.cache_takeover(total_ways)


class StaticPolicy(Policy):
    """A fixed HP/BE split (the per-configuration points of Figure 3)."""

    def __init__(self, hp_ways: int, overlap_ways: int = 0) -> None:
        self.hp_ways = hp_ways
        self.overlap_ways = overlap_ways
        self.name = f"S{hp_ways}" + (f"+{overlap_ways}o" if overlap_ways else "")

    def setup(self, total_ways: int) -> Allocation | None:
        """See :meth:`Policy.setup`."""
        return Allocation(
            hp_ways=self.hp_ways,
            total_ways=total_ways,
            overlap_ways=self.overlap_ways,
        )


class DicerPolicy(Policy):
    """DICER: dynamic adaptation via the Listings 1-3 state machine.

    ``controller_factory`` swaps the controller implementation while
    keeping the policy/runner plumbing identical — the conformance suite
    uses it to drive whole simulated consolidations with the
    paper-literal oracle (:class:`repro.valid.reference.
    ReferenceController`) and diff the two traces end to end.
    """

    name = "DICER"

    def __init__(
        self,
        config: DicerConfig = TABLE1_DICER_CONFIG,
        controller_factory: Callable[
            [DicerConfig, int], DicerController
        ] = DicerController,
    ) -> None:
        self.config = config
        self._factory = controller_factory
        self._controller: DicerController | None = None

    @property
    def dynamic(self) -> bool:
        """DICER adapts every monitoring period."""
        return True

    @property
    def period_s(self) -> float:
        """Monitoring period from the DICER config."""
        return self.config.period_s

    @property
    def controller(self) -> DicerController:
        """The live controller (after :meth:`setup`)."""
        if self._controller is None:
            raise RuntimeError("setup() has not run yet")
        return self._controller

    def setup(self, total_ways: int) -> Allocation | None:
        """See :meth:`Policy.setup`."""
        self._controller = self._factory(self.config, total_ways)
        return self._controller.initial_allocation()

    def update(self, sample: PeriodSample) -> Allocation | None:
        """Delegate the period's decision to the controller."""
        return self.controller.update(sample)

    def fresh(self) -> "DicerPolicy":
        """New policy with a fresh controller, same config and factory."""
        return DicerPolicy(self.config, self._factory)
