"""DICER's core: allocations, the controller (Listings 1-3), co-location
policies, and the paper's future-work extensions (MBA throttling, BE
admission control, overlapping partitions)."""

from repro.core.allocation import Allocation
from repro.core.config import TABLE1_DICER_CONFIG, DicerConfig
from repro.core.dcpqos import DcpQosPolicy
from repro.core.trace_tools import allocation_strip, render_trace, summarise_trace
from repro.core.dicer import ControllerMode, DecisionRecord, DicerController
from repro.core.admission import AdmissionPlan, find_max_bes, hp_admission_metric
from repro.core.mba import MBA_LEVELS, MbaDicerController, MbaDicerPolicy
from repro.core.overlap import OverlapSweep, explore_overlap, render_overlap
from repro.core.policies import (
    CacheTakeoverPolicy,
    DicerPolicy,
    Policy,
    StaticPolicy,
    UnmanagedPolicy,
)

__all__ = [
    "Allocation",
    "TABLE1_DICER_CONFIG",
    "DicerConfig",
    "ControllerMode",
    "DecisionRecord",
    "DicerController",
    "CacheTakeoverPolicy",
    "DicerPolicy",
    "Policy",
    "StaticPolicy",
    "UnmanagedPolicy",
    "DcpQosPolicy",
    "allocation_strip",
    "render_trace",
    "summarise_trace",
    "AdmissionPlan",
    "find_max_bes",
    "hp_admission_metric",
    "MBA_LEVELS",
    "MbaDicerController",
    "MbaDicerPolicy",
    "OverlapSweep",
    "explore_overlap",
    "render_overlap",
]
