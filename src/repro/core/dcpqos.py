"""DCP-QoS — the related-work baseline (paper Section 5).

    "Papadakis et al. proposed DCP-QoS, a dynamic cache partitioning scheme
    for co-locating HP and BEs that is similar to DICER. While DCP-QoS
    follows a black-box approach, it lacks support for identifying and
    mitigating memory bandwidth saturation."

Implemented as DICER with :attr:`~repro.core.config.DicerConfig.
saturation_detection` disabled: the identical IPC-driven optimisation and
phase/reset machinery, but no bandwidth monitoring — so a CT-Thwarted
workload is never reclassified and the controller keeps treating CT's
allocation as the safe harbour. Comparing :class:`DcpQosPolicy` against
:class:`~repro.core.policies.DicerPolicy` isolates the paper's novelty
claim (the saturation path) experimentally.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.allocation import Allocation
from repro.core.config import DicerConfig, TABLE1_DICER_CONFIG
from repro.core.dicer import DicerController
from repro.core.policies import DicerPolicy

__all__ = ["DcpQosPolicy"]


class DcpQosPolicy(DicerPolicy):
    """Dynamic cache partitioning without bandwidth-saturation awareness."""

    name = "DCP-QoS"

    def __init__(self, config: DicerConfig = TABLE1_DICER_CONFIG) -> None:
        super().__init__(replace(config, saturation_detection=False))

    def setup(self, total_ways: int) -> Allocation | None:
        """Build the saturation-blind controller and return CT."""
        self._controller = DicerController(self.config, total_ways)
        return self._controller.initial_allocation()

    def fresh(self) -> "DcpQosPolicy":
        # Re-derive from the (already flag-stripped) config.
        """Stateless copy for the next experiment."""
        clone = DcpQosPolicy.__new__(DcpQosPolicy)
        DicerPolicy.__init__(clone, self.config)
        return clone
