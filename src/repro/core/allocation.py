"""Way allocations — the controller's decision variable.

DICER's whole output is a single number per period: how many of the LLC's
ways the High-Priority application owns exclusively (the BEs share the
rest). :class:`Allocation` wraps that number with validation and the
transitions the controller performs (shrink by one way, Cache-Takeover,
etc.), and converts to the simulator's partition spec.

:class:`GroupAllocation` is the M-class generalisation for the policy zoo
(DESIGN.md "Policy zoo"): an ordered list of core groups, each with its own
exclusive way count, plus an optional shared zone. LFOC's fairness clusters
and any future multi-priority controller emit these; the actuation surface
(:meth:`~repro.rdt.simulated.SimulatedRdt.apply`, the runners) duck-types
on ``to_partition`` so both shapes flow through unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.partition import CacheGroup, PartitionSpec

__all__ = ["Allocation", "GroupAllocation"]


@dataclass(frozen=True, order=True)
class Allocation:
    """An HP/BE split of ``total_ways`` LLC ways.

    ``overlap_ways`` supports the overlapping-partition extension (paper
    Section 6): that many ways are reachable by both HP and BEs. The
    baseline DICER/CT configurations always use ``overlap_ways=0``
    (non-overlapping, Section 3.3).
    """

    hp_ways: int
    total_ways: int
    overlap_ways: int = 0

    def __post_init__(self) -> None:
        if self.total_ways < 2:
            raise ValueError(f"total_ways must be >= 2, got {self.total_ways}")
        if self.hp_ways < 1:
            raise ValueError(f"hp_ways must be >= 1, got {self.hp_ways}")
        if self.overlap_ways < 0:
            raise ValueError(
                f"overlap_ways must be >= 0, got {self.overlap_ways}"
            )
        if self.be_ways < 1:
            raise ValueError(
                f"hp_ways={self.hp_ways} + overlap={self.overlap_ways} "
                f"leaves no exclusive way for BEs out of {self.total_ways}"
            )

    @property
    def be_ways(self) -> int:
        """Ways exclusively available to the BE group."""
        return self.total_ways - self.hp_ways - self.overlap_ways

    # -- factories --------------------------------------------------------

    @classmethod
    def cache_takeover(cls, total_ways: int) -> "Allocation":
        """CT: all but one way to HP, one way shared by all BEs."""
        return cls(hp_ways=total_ways - 1, total_ways=total_ways)

    @classmethod
    def even_split(cls, total_ways: int) -> "Allocation":
        """A 50/50 reference split (used by ablations)."""
        return cls(hp_ways=total_ways // 2, total_ways=total_ways)

    # -- transitions -------------------------------------------------------

    def shrink_hp(self) -> "Allocation":
        """Give one HP way to the BEs (DICER's optimisation step).

        At the floor (HP already at 1 way) returns ``self`` unchanged.
        """
        if self.hp_ways <= 1:
            return self
        return Allocation(
            hp_ways=self.hp_ways - 1,
            total_ways=self.total_ways,
            overlap_ways=self.overlap_ways,
        )

    def with_hp_ways(self, hp_ways: int) -> "Allocation":
        """Copy with a different HP way count."""
        return Allocation(
            hp_ways=hp_ways,
            total_ways=self.total_ways,
            overlap_ways=self.overlap_ways,
        )

    # -- conversions -------------------------------------------------------

    def to_partition(self, n_cores: int) -> PartitionSpec:
        """The simulator-side partition this allocation denotes."""
        return PartitionSpec.hp_be(
            self.hp_ways,
            n_cores,
            self.total_ways,
            overlap_ways=self.overlap_ways,
        )

    def __str__(self) -> str:
        if self.overlap_ways:
            return (
                f"HP:{self.hp_ways}+{self.overlap_ways}sh/"
                f"BE:{self.be_ways}+{self.overlap_ways}sh"
            )
        return f"HP:{self.hp_ways}/BE:{self.be_ways}"


@dataclass(frozen=True)
class GroupAllocation:
    """An M-class split of ``total_ways`` across explicit core groups.

    The policy-zoo generalisation of :class:`Allocation`: instead of one
    HP/BE number, a policy emits an ordered list of core groups (LFOC's
    fairness clusters, CBP's priority classes) with one exclusive way
    count each, plus an optional zone shared by every core. Groups are
    named ``G0..Gk`` unless ``names`` overrides them; naming the first
    group ``"HP"`` keeps HP-aware telemetry (timeline ``hp_ways``) alive
    for policies that still distinguish a primary class.

    ``cores`` lists the member cores of each group; together the groups
    must cover every core exactly once — :meth:`to_partition` revalidates
    through :class:`~repro.sim.partition.PartitionSpec`, this constructor
    checks the way arithmetic eagerly so controller bugs fail at decision
    time with a precise message.
    """

    total_ways: int
    cores: tuple[tuple[int, ...], ...]
    ways: tuple[float, ...]
    shared_ways: float = 0.0
    names: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.total_ways < 2:
            raise ValueError(f"total_ways must be >= 2, got {self.total_ways}")
        if not self.cores:
            raise ValueError("need at least one group")
        if len(self.cores) != len(self.ways):
            raise ValueError(
                f"{len(self.cores)} core groups but {len(self.ways)} "
                "way counts"
            )
        if self.names is not None and len(self.names) != len(self.cores):
            raise ValueError(
                f"{len(self.cores)} core groups but {len(self.names)} names"
            )
        if self.shared_ways < 0:
            raise ValueError(
                f"shared_ways must be >= 0, got {self.shared_ways}"
            )
        for group, w in zip(self.cores, self.ways):
            if not group:
                raise ValueError("every group needs at least one core")
            if w < 1:
                raise ValueError(
                    f"every group needs >= 1 way, got {w} for cores {group}"
                )
        total = sum(self.ways) + self.shared_ways
        if abs(total - self.total_ways) > 1e-9:
            raise ValueError(
                f"group ways ({total}) must sum to total_ways "
                f"({self.total_ways})"
            )

    @property
    def n_groups(self) -> int:
        """Number of priority classes in this allocation."""
        return len(self.cores)

    def group_names(self) -> tuple[str, ...]:
        """Display/partition names, ``G0..Gk`` unless overridden."""
        if self.names is not None:
            return self.names
        return tuple(f"G{i}" for i in range(len(self.cores)))

    # -- conversions -------------------------------------------------------

    def to_partition(self, n_cores: int) -> PartitionSpec:
        """The simulator-side partition this allocation denotes.

        ``n_cores`` must match the cores the groups cover (the runner
        passes the active core count, same duck-typed call it makes on
        :class:`Allocation`).
        """
        groups = tuple(
            CacheGroup(name=name, cores=tuple(cores), ways=float(w))
            for name, cores, w in zip(
                self.group_names(), self.cores, self.ways
            )
        )
        return PartitionSpec(
            n_cores=n_cores,
            total_ways=self.total_ways,
            groups=groups,
            shared_ways=float(self.shared_ways),
        )

    def __str__(self) -> str:
        parts = [
            f"{name}:{w:g}({len(cores)}c)"
            for name, cores, w in zip(
                self.group_names(), self.cores, self.ways
            )
        ]
        if self.shared_ways:
            parts.append(f"shared:{self.shared_ways:g}")
        return "/".join(parts)
