"""HP/BE way allocations — the controller's decision variable.

DICER's whole output is a single number per period: how many of the LLC's
ways the High-Priority application owns exclusively (the BEs share the
rest). :class:`Allocation` wraps that number with validation and the
transitions the controller performs (shrink by one way, Cache-Takeover,
etc.), and converts to the simulator's partition spec.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.partition import PartitionSpec

__all__ = ["Allocation"]


@dataclass(frozen=True, order=True)
class Allocation:
    """An HP/BE split of ``total_ways`` LLC ways.

    ``overlap_ways`` supports the overlapping-partition extension (paper
    Section 6): that many ways are reachable by both HP and BEs. The
    baseline DICER/CT configurations always use ``overlap_ways=0``
    (non-overlapping, Section 3.3).
    """

    hp_ways: int
    total_ways: int
    overlap_ways: int = 0

    def __post_init__(self) -> None:
        if self.total_ways < 2:
            raise ValueError(f"total_ways must be >= 2, got {self.total_ways}")
        if self.hp_ways < 1:
            raise ValueError(f"hp_ways must be >= 1, got {self.hp_ways}")
        if self.overlap_ways < 0:
            raise ValueError(
                f"overlap_ways must be >= 0, got {self.overlap_ways}"
            )
        if self.be_ways < 1:
            raise ValueError(
                f"hp_ways={self.hp_ways} + overlap={self.overlap_ways} "
                f"leaves no exclusive way for BEs out of {self.total_ways}"
            )

    @property
    def be_ways(self) -> int:
        """Ways exclusively available to the BE group."""
        return self.total_ways - self.hp_ways - self.overlap_ways

    # -- factories --------------------------------------------------------

    @classmethod
    def cache_takeover(cls, total_ways: int) -> "Allocation":
        """CT: all but one way to HP, one way shared by all BEs."""
        return cls(hp_ways=total_ways - 1, total_ways=total_ways)

    @classmethod
    def even_split(cls, total_ways: int) -> "Allocation":
        """A 50/50 reference split (used by ablations)."""
        return cls(hp_ways=total_ways // 2, total_ways=total_ways)

    # -- transitions -------------------------------------------------------

    def shrink_hp(self) -> "Allocation":
        """Give one HP way to the BEs (DICER's optimisation step).

        At the floor (HP already at 1 way) returns ``self`` unchanged.
        """
        if self.hp_ways <= 1:
            return self
        return Allocation(
            hp_ways=self.hp_ways - 1,
            total_ways=self.total_ways,
            overlap_ways=self.overlap_ways,
        )

    def with_hp_ways(self, hp_ways: int) -> "Allocation":
        """Copy with a different HP way count."""
        return Allocation(
            hp_ways=hp_ways,
            total_ways=self.total_ways,
            overlap_ways=self.overlap_ways,
        )

    # -- conversions -------------------------------------------------------

    def to_partition(self, n_cores: int) -> PartitionSpec:
        """The simulator-side partition this allocation denotes."""
        return PartitionSpec.hp_be(
            self.hp_ways,
            n_cores,
            self.total_ways,
            overlap_ways=self.overlap_ways,
        )

    def __str__(self) -> str:
        if self.overlap_ways:
            return (
                f"HP:{self.hp_ways}+{self.overlap_ways}sh/"
                f"BE:{self.be_ways}+{self.overlap_ways}sh"
            )
        return f"HP:{self.hp_ways}/BE:{self.be_ways}"
