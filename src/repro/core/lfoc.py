"""LFOC-style fairness-oriented cache clustering (policy zoo).

LFOC (Garcia-Garcia et al., "LFOC: A Lightweight Fairness-Oriented Cache
Clustering Policy for Commodity Multicores") targets the scenario DICER
never touches: *many co-equal* applications sharing one LLC. Instead of an
HP/BE split it (1) classifies each application online from lightweight
monitoring data into *streaming* / *light* / *cache-sensitive* behaviour
classes, (2) groups applications into a small number of CAT clusters —
aggressors confined together, sensitive apps protected — and (3) divides
the ways among the sensitive clusters in proportion to how much cache they
can actually use.

This module is the production implementation; the paper-literal reference
oracle lives in :mod:`repro.valid.reference` (``ReferenceLfoc``) and the
two are differentially fuzzed against each other
(:func:`repro.valid.differential.run_lfoc_differential`) — every clustering
decision here is checkable against an executable spec.

Classification uses the per-core arrays of
:class:`~repro.rdt.sample.PeriodSample` (bandwidth, IPC, occupancy-ways),
averaged over a warmup window:

* **streaming** — bandwidth at/above ``streaming_bw_bytes``: high-traffic,
  low-reuse; confined so it cannot thrash the sensitive clusters.
* **light** — bandwidth below ``light_bw_bytes`` *and* occupancy below
  ``light_occupancy_ways``: barely touches the LLC; parked on a small
  partition at no cost.
* **sensitive** — everything else: keeps state in the LLC and pays for
  losing it.

Clustering (the executable spec both implementations follow):

1. All streaming cores form one cluster with ``streaming_ways`` ways; all
   light cores one cluster with ``light_ways`` ways (each only if
   non-empty).
2. Sensitive cores, ordered by decreasing average occupancy (ties by core
   index), are split into ``k`` contiguous chunks of near-equal size,
   where ``k = min(max_clusters - special_clusters, n_sensitive)``.
3. The remaining ways are apportioned across the sensitive clusters by
   the largest-remainder method over summed occupancy (each cluster gets
   at least one way); with no sensitive cores the leftover ways join the
   light cluster (or the streaming cluster when there are no light cores).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.allocation import GroupAllocation
from repro.core.policies import Policy
from repro.rdt.sample import PeriodSample
from repro.sim.platform import gbps_to_bytes
from repro.util.validation import check_positive, check_positive_int

__all__ = [
    "LfocConfig",
    "LfocDecision",
    "LfocController",
    "LfocPolicy",
    "DEFAULT_LFOC_CONFIG",
    "classify_cores",
    "cluster_cores",
    "apportion_ways",
]


@dataclass(frozen=True)
class LfocConfig:
    """Tunables of the LFOC clustering controller."""

    #: Monitoring period (seconds).
    period_s: float = 1.0
    #: Periods of unmanaged observation before the first clustering.
    warmup_periods: int = 3
    #: Re-evaluate the clustering every this many post-warmup periods.
    recluster_periods: int = 10
    #: Per-core bandwidth at/above which a core is *streaming*.
    streaming_bw_bytes: float = gbps_to_bytes(12.0)
    #: Per-core bandwidth below which a core may be *light* ...
    light_bw_bytes: float = gbps_to_bytes(1.0)
    #: ... provided its occupancy also sits below this many ways.
    light_occupancy_ways: float = 2.0
    #: Upper bound on CAT clusters (real CAT exposes 4-16 CLOS).
    max_clusters: int = 4
    #: Ways confining the streaming cluster.
    streaming_ways: int = 2
    #: Ways parked on the light cluster.
    light_ways: int = 1

    def __post_init__(self) -> None:
        check_positive("period_s", self.period_s)
        check_positive_int("warmup_periods", self.warmup_periods)
        check_positive_int("recluster_periods", self.recluster_periods)
        check_positive("streaming_bw_bytes", self.streaming_bw_bytes)
        check_positive("light_bw_bytes", self.light_bw_bytes)
        check_positive("light_occupancy_ways", self.light_occupancy_ways)
        check_positive_int("max_clusters", self.max_clusters)
        check_positive_int("streaming_ways", self.streaming_ways)
        check_positive_int("light_ways", self.light_ways)
        if self.light_bw_bytes >= self.streaming_bw_bytes:
            raise ValueError(
                "light_bw_bytes must be below streaming_bw_bytes"
            )


DEFAULT_LFOC_CONFIG = LfocConfig()


@dataclass(frozen=True)
class LfocDecision:
    """Telemetry: one LFOC decision.

    ``event`` is one of ``warmup``, ``cluster`` (first grouping),
    ``recluster`` (a periodic re-evaluation that changed the grouping),
    ``hold`` (re-evaluation confirmed the grouping, or an off-cadence
    period), or ``fault`` (unusable sample — period is inert).
    """

    period: int
    event: str
    #: Per-core behaviour class ("stream" / "light" / "sensitive"), empty
    #: until the first clustering.
    classes: tuple[str, ...] = ()
    #: Cluster membership: tuple of core tuples (empty until clustered).
    groups: tuple[tuple[int, ...], ...] = ()
    #: Ways per cluster, aligned with ``groups``.
    ways: tuple[int, ...] = ()


def classify_cores(
    bw: list[float], occ: list[float], config: LfocConfig
) -> list[str]:
    """Per-core behaviour classes from window-averaged signals."""
    classes = []
    for b, o in zip(bw, occ):
        if b >= config.streaming_bw_bytes:
            classes.append("stream")
        elif b < config.light_bw_bytes and o < config.light_occupancy_ways:
            classes.append("light")
        else:
            classes.append("sensitive")
    return classes


def apportion_ways(
    weights: list[float], total: int
) -> list[int]:
    """Largest-remainder apportionment of ``total`` ways, each share >= 1.

    Every cluster gets one way up front; the rest split proportionally to
    ``weights`` with remainders broken by (remainder desc, index asc) —
    fully deterministic, no float-order ambiguity beyond the quotas
    themselves (both implementations compute them identically).
    """
    k = len(weights)
    if total < k:
        raise ValueError(f"{k} clusters cannot share {total} ways")
    shares = [1] * k
    spare = total - k
    if spare == 0:
        return shares
    wsum = sum(weights)
    if wsum <= 0.0:
        quotas = [spare / k] * k
    else:
        quotas = [spare * w / wsum for w in weights]
    floors = [math.floor(q) for q in quotas]
    for i, f in enumerate(floors):
        shares[i] += f
    left = spare - sum(floors)
    order = sorted(
        range(k), key=lambda i: (-(quotas[i] - floors[i]), i)
    )
    for i in order[:left]:
        shares[i] += 1
    return shares


def cluster_cores(
    classes: list[str],
    occ: list[float],
    total_ways: int,
    config: LfocConfig,
) -> tuple[tuple[tuple[int, ...], ...], tuple[int, ...]]:
    """The clustering spec (module docstring, steps 1-3).

    Returns ``(groups, ways)``: cluster membership (streaming first, then
    light, then sensitive clusters by decreasing occupancy) and the way
    count per cluster.
    """
    streams = [i for i, c in enumerate(classes) if c == "stream"]
    lights = [i for i, c in enumerate(classes) if c == "light"]
    sensitive = [i for i, c in enumerate(classes) if c == "sensitive"]

    groups: list[tuple[int, ...]] = []
    ways: list[int] = []
    if streams:
        groups.append(tuple(streams))
        ways.append(config.streaming_ways)
    if lights:
        groups.append(tuple(lights))
        ways.append(config.light_ways)
    remaining = total_ways - sum(ways)

    if not sensitive:
        # Leftover ways join the light cluster (streaming if no lights):
        # confinement budgets only make sense when someone needs protecting.
        if remaining > 0 and groups:
            ways[-1] += remaining
        return tuple(groups), tuple(ways)

    k = min(config.max_clusters - len(groups), len(sensitive), remaining)
    k = max(k, 1)
    # Order by decreasing average occupancy, ties by core index.
    ordered = sorted(sensitive, key=lambda i: (-occ[i], i))
    # Near-equal contiguous chunks, first chunks one larger on remainder.
    base, extra = divmod(len(ordered), k)
    chunks: list[list[int]] = []
    pos = 0
    for j in range(k):
        size = base + (1 if j < extra else 0)
        chunks.append(ordered[pos:pos + size])
        pos += size
    weights = [sum(occ[i] for i in chunk) for chunk in chunks]
    shares = apportion_ways(weights, remaining)
    for chunk, share in zip(chunks, shares):
        groups.append(tuple(sorted(chunk)))
        ways.append(share)
    return tuple(groups), tuple(ways)


class LfocController:
    """Online classification + clustering over per-core samples."""

    def __init__(self, config: LfocConfig, total_ways: int) -> None:
        self.config = config
        self.total_ways = check_positive_int("total_ways", total_ways)
        self.period = 0
        self.trace: list[LfocDecision] = []
        self._window_bw: list[float] | None = None
        self._window_occ: list[float] | None = None
        self._window_n = 0
        self._since_cluster = 0
        self._groups: tuple[tuple[int, ...], ...] = ()
        self._ways: tuple[int, ...] = ()
        self._classes: tuple[str, ...] = ()

    # -- helpers ---------------------------------------------------------

    def initial_allocation(self) -> None:
        """LFOC observes unmanaged sharing first; no initial partition."""
        return None

    def _sample_fault(self, sample: PeriodSample) -> bool:
        if sample.n_cores == 0:
            return True
        if len(sample.core_mem_bytes_s) != sample.n_cores or len(
            sample.core_occupancy_ways
        ) != sample.n_cores:
            return True
        values = (
            sample.core_ipcs
            + sample.core_mem_bytes_s
            + sample.core_occupancy_ways
        )
        return not all(math.isfinite(v) for v in values)

    def _accumulate(self, sample: PeriodSample) -> None:
        n = sample.n_cores
        if self._window_bw is None or len(self._window_bw) != n:
            self._window_bw = [0.0] * n
            self._window_occ = [0.0] * n
            self._window_n = 0
        for i in range(n):
            self._window_bw[i] += sample.core_mem_bytes_s[i]
            self._window_occ[i] += sample.core_occupancy_ways[i]
        self._window_n += 1

    def _window_averages(self) -> tuple[list[float], list[float]]:
        n = self._window_n
        bw = [x / n for x in self._window_bw]
        occ = [x / n for x in self._window_occ]
        return bw, occ

    def _allocation(self) -> GroupAllocation:
        return GroupAllocation(
            total_ways=self.total_ways,
            cores=self._groups,
            ways=tuple(float(w) for w in self._ways),
        )

    def _record(self, event: str) -> None:
        self.trace.append(
            LfocDecision(
                period=self.period,
                event=event,
                classes=self._classes,
                groups=self._groups,
                ways=self._ways,
            )
        )

    # -- the per-period decision ----------------------------------------

    def update(self, sample: PeriodSample) -> GroupAllocation | None:
        """One monitoring period: classify / cluster / hold."""
        self.period += 1
        if self._sample_fault(sample):
            # Inert: no window pollution, no decision, cadence unchanged.
            self._record("fault")
            return None
        self._accumulate(sample)

        if self.period < self.config.warmup_periods:
            self._record("warmup")
            return None

        if not self._groups:
            bw, occ = self._window_averages()
            self._classes = tuple(classify_cores(bw, occ, self.config))
            self._groups, self._ways = cluster_cores(
                list(self._classes), occ, self.total_ways, self.config
            )
            self._reset_window()
            self._record("cluster")
            return self._allocation()

        self._since_cluster += 1
        if self._since_cluster < self.config.recluster_periods:
            self._record("hold")
            return None

        bw, occ = self._window_averages()
        classes = tuple(classify_cores(bw, occ, self.config))
        groups, ways = cluster_cores(
            list(classes), occ, self.total_ways, self.config
        )
        self._reset_window()
        self._since_cluster = 0
        if groups == self._groups and ways == self._ways:
            self._classes = classes
            self._record("hold")
            return None
        self._classes = classes
        self._groups, self._ways = groups, ways
        self._record("recluster")
        return self._allocation()

    def _reset_window(self) -> None:
        self._window_bw = None
        self._window_occ = None
        self._window_n = 0


class LfocPolicy(Policy):
    """Fairness clustering of co-equal apps into CAT groups."""

    name = "LFOC"

    def __init__(self, config: LfocConfig = DEFAULT_LFOC_CONFIG) -> None:
        self.config = config
        self._controller: LfocController | None = None

    @property
    def dynamic(self) -> bool:
        """LFOC observes, clusters and periodically re-evaluates."""
        return True

    @property
    def period_s(self) -> float:
        """Monitoring period from the LFOC config."""
        return self.config.period_s

    @property
    def controller(self) -> LfocController:
        """The live controller (after :meth:`setup`)."""
        if self._controller is None:
            raise RuntimeError("setup() has not run yet")
        return self._controller

    def setup(self, total_ways: int) -> None:
        """Start unmanaged; the first clusters come from :meth:`update`."""
        self._controller = LfocController(self.config, total_ways)
        return self._controller.initial_allocation()

    def update(self, sample: PeriodSample) -> GroupAllocation | None:
        """Delegate the period's decision to the controller."""
        return self.controller.update(sample)

    def fresh(self) -> "LfocPolicy":
        """New policy with a fresh controller, same config."""
        return LfocPolicy(self.config)
