"""DICER controller configuration (paper Table 1, bottom half).

All thresholds the paper reports — monitoring period T = 1 s, bandwidth
saturation threshold 50 Gbps, phase-detection threshold 30 %, IPC stability
percentage alpha = 5 % — plus the implementation knobs the paper mentions but
does not enumerate (the sampling grid and per-sample dwell time, and a
resampling cooldown guard).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.platform import gbps_to_bytes
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
)

__all__ = ["DicerConfig", "TABLE1_DICER_CONFIG"]


@dataclass(frozen=True)
class DicerConfig:
    """Tunables of the DICER control loop.

    Attributes
    ----------
    period_s:
        Monitoring period T. Every controller decision happens on this
        cadence (Table 1: 1 s).
    bw_threshold_bytes:
        Total memory traffic above which the link counts as saturated
        (Table 1: 50 Gbps).
    phase_threshold:
        Phase change declared when HP's bandwidth exceeds ``(1 + this)``
        times the geometric mean of its previous three periods (Equation 2;
        Table 1: 30 %).
    alpha:
        IPC stability band: performance is "stable" while the period's IPC
        stays within ``±alpha`` of the previous one (Equation 3; Table 1:
        5 %).
    sample_hp_ways:
        Descending HP way counts probed by allocation sampling (paper: a
        decreasing sequence "similar to KPart"; exact grid unspecified).
    sample_periods:
        Monitoring periods each sample dwells ("a fixed interval, long
        enough to make the effects of the partitioning visible").
    resample_cooldown_periods:
        Implementation guard absent from the paper's listings: after a
        sampling pass, persistent saturation does not retrigger sampling for
        this many periods. Without it, a workload whose *optimum* is still
        saturated (e.g. ten streaming applications) would resample every
        period and never run in steady state. Set to 0 for the literal
        listing behaviour (exercised by an ablation benchmark).
    phase_detector:
        Equation 2's reference statistic. ``"geomean3"`` (paper): compare
        HP bandwidth against the geometric mean of the previous three
        periods. ``"ewma"``: compare against an exponentially weighted
        moving average (weight :attr:`ewma_weight`) — smoother, slower to
        re-arm after a transition; the phase-detector ablation contrasts
        the two.
    ewma_weight:
        Weight of the newest sample in the EWMA detector.
    saturation_detection:
        ``False`` disables the bandwidth-saturation path entirely,
        degenerating DICER into the DCP-QoS-style controller of the related
        work (Cook et al., Papadakis et al.): IPC-driven partitioning with
        no awareness of memory-link saturation. The paper's novelty claim
        is precisely this flag's effect on CT-Thwarted workloads; the
        related-work benchmark compares both settings.
    """

    period_s: float = 1.0
    bw_threshold_bytes: float = gbps_to_bytes(50.0)
    phase_threshold: float = 0.30
    alpha: float = 0.05
    sample_hp_ways: tuple[int, ...] = (19, 15, 11, 8, 6, 4, 3, 2, 1)
    sample_periods: int = 1
    resample_cooldown_periods: int = 5
    saturation_detection: bool = True
    phase_detector: str = "geomean3"
    ewma_weight: float = 0.3

    def __post_init__(self) -> None:
        check_positive("period_s", self.period_s)
        check_positive("bw_threshold_bytes", self.bw_threshold_bytes)
        check_positive("phase_threshold", self.phase_threshold)
        check_fraction("alpha", self.alpha)
        check_positive_int("sample_periods", self.sample_periods)
        if self.resample_cooldown_periods < 0:
            raise ValueError("resample_cooldown_periods must be >= 0")
        if not self.sample_hp_ways:
            raise ValueError("sample_hp_ways must not be empty")
        if list(self.sample_hp_ways) != sorted(
            set(self.sample_hp_ways), reverse=True
        ):
            raise ValueError(
                "sample_hp_ways must be strictly decreasing (the paper "
                "samples decreasing partition sizes)"
            )
        if min(self.sample_hp_ways) < 1:
            raise ValueError("sampled HP way counts must be >= 1")
        if self.phase_detector not in ("geomean3", "ewma"):
            raise ValueError(
                f"unknown phase_detector {self.phase_detector!r}"
            )
        check_fraction("ewma_weight", self.ewma_weight)
        if self.ewma_weight == 0.0:
            raise ValueError("ewma_weight must be > 0")


    @classmethod
    def for_ways(cls, total_ways: int, **overrides) -> "DicerConfig":
        """A configuration whose sampling grid fits an LLC of ``total_ways``.

        The default grid targets the paper's 20-way cache; other CAT
        machines have 11/15/16-way CBMs. The derived grid starts at
        ``total_ways - 1`` (CT), descends roughly geometrically, and always
        ends at 1 — the same shape as the paper's.
        """
        if total_ways < 2:
            raise ValueError(f"total_ways must be >= 2, got {total_ways}")
        grid: list[int] = []
        w = total_ways - 1
        while w > 1:
            grid.append(w)
            w = max(1, int(w * 0.72))
        grid.append(1)
        return cls(sample_hp_ways=tuple(dict.fromkeys(grid)), **overrides)


#: The configuration the paper evaluates (Table 1).
TABLE1_DICER_CONFIG = DicerConfig()
