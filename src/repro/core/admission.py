"""BE admission planning — the paper's second future-work extension.

    "To better safeguard the performance of the HP application, we intend
    to extend DICER to dynamically manage the number of co-located BEs."
    (Section 6)

:func:`find_max_bes` answers the operator's question directly: given an HP,
a BE type, a policy and an SLO, how many BE instances can the server admit
before the SLO breaks? Conformance is monotone non-increasing in the BE
count under every policy here (each extra instance only adds cache and
bandwidth pressure), so a binary search over the instance count suffices.

:class:`AdmissionPlan` carries the full sweep so capacity-planning examples
can show the whole frontier, not just the answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies import Policy
from repro.experiments.runner import PairResult, run_pair
from repro.metrics.slo import slo_achieved
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.workloads.mix import make_mix

__all__ = ["AdmissionPlan", "find_max_bes"]


@dataclass(frozen=True)
class AdmissionPlan:
    """Outcome of an admission search."""

    hp_name: str
    be_name: str
    policy: str
    slo: float
    #: BE count -> experiment result, for every count probed.
    probes: dict[int, PairResult]
    #: Largest admissible BE count (0 when even one BE breaks the SLO).
    max_bes: int

    def frontier(self) -> list[tuple[int, float, float]]:
        """(n_be, HP normalised IPC, EFU) rows sorted by BE count."""
        return [
            (n, r.hp_norm_ipc, r.efu) for n, r in sorted(self.probes.items())
        ]


def find_max_bes(
    hp_name: str,
    be_name: str,
    policy: Policy,
    slo: float,
    *,
    platform: PlatformConfig = TABLE1_PLATFORM,
    max_cores: int | None = None,
) -> AdmissionPlan:
    """Binary-search the largest BE count that keeps HP's SLO.

    Probes are memoised in the returned plan; the search runs
    O(log max_bes) experiments.
    """
    limit = (max_cores or platform.n_cores) - 1
    if limit < 1:
        raise ValueError("need room for at least one BE")
    probes: dict[int, PairResult] = {}

    def ok(n_be: int) -> bool:
        result = probes.get(n_be)
        if result is None:
            result = run_pair(
                make_mix(hp_name, be_name, n_be=n_be), policy, platform
            )
            probes[n_be] = result
        return slo_achieved(result.hp_norm_ipc, slo)

    lo, hi = 0, limit  # invariant: lo admissible (0 trivially), hi+1 not probed
    if ok(limit):
        lo = limit
    else:
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if ok(mid):
                lo = mid
            else:
                hi = mid
    return AdmissionPlan(
        hp_name=hp_name,
        be_name=be_name,
        policy=policy.name,
        slo=slo,
        probes=probes,
        max_bes=lo,
    )
