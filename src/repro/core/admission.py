"""BE admission planning — the paper's second future-work extension.

    "To better safeguard the performance of the HP application, we intend
    to extend DICER to dynamically manage the number of co-located BEs."
    (Section 6)

:func:`find_max_bes` answers the operator's question directly: given an HP
(or several co-equal HPs), a BE type, a policy and an SLO, how many BE
instances can the server admit before the SLO breaks? Conformance is
monotone non-increasing in the BE count under every policy here (each
extra instance only adds cache and bandwidth pressure), so a binary
search over the instance count suffices.

The policy argument accepts any :class:`~repro.core.policies.Policy`
*or* a zoo policy name (``UM``/``CT``/``DICER``/``LFOC``/``CBP``/
``S<k>[+<o>o]``, resolved through :func:`repro.experiments.queue.
policy_from_name`), and the HP side accepts either one catalog name or a
sequence of names — a multi-HP mix judged on its *worst* HP (the
fairness metric :func:`repro.experiments.runner.run_multi` reports).
This is the admission path the :mod:`repro.serve` control plane
bin-packs with, so it also threads ``precision``/``kernel`` down to the
solver (serve uses the fast kernel; the library default stays exact).

:class:`AdmissionPlan` carries the full sweep so capacity-planning
examples can show the whole frontier, not just the answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.policies import Policy
from repro.experiments.runner import (
    MultiResult,
    PairResult,
    run_multi,
    run_pair,
)
from repro.metrics.slo import slo_achieved
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.workloads.mix import make_mix, make_multi_mix

__all__ = ["AdmissionPlan", "find_max_bes", "hp_admission_metric"]


def hp_admission_metric(result: PairResult | MultiResult) -> float:
    """The HP-side QoS number an admission decision is judged on.

    Classic pairs report the HP's normalised IPC; multi-HP mixes report
    the *minimum* over the co-equal HPs (no class left behind).
    """
    if isinstance(result, MultiResult):
        return result.min_hp_norm_ipc
    return result.hp_norm_ipc


def _resolve_policy(policy: Policy | str) -> Policy:
    """Accept a live policy or a zoo name (``policy_from_name``)."""
    if isinstance(policy, str):
        # Local import: queue pulls in the policy zoo, which would be an
        # import cycle at module scope for some callers.
        from repro.experiments.queue import policy_from_name

        return policy_from_name(policy)
    return policy


@dataclass(frozen=True)
class AdmissionPlan:
    """Outcome of an admission search."""

    hp_name: str
    be_name: str
    policy: str
    slo: float
    #: BE count -> experiment result, for every count probed.
    probes: dict[int, PairResult | MultiResult]
    #: Largest admissible BE count (0 when even one BE breaks the SLO).
    max_bes: int
    #: All HP catalog names (one entry for the classic single-HP form).
    hp_names: tuple[str, ...] = ()

    def frontier(self) -> list[tuple[int, float, float]]:
        """(n_be, HP admission metric, EFU) rows sorted by BE count."""
        return [
            (n, hp_admission_metric(r), r.efu)
            for n, r in sorted(self.probes.items())
        ]


def find_max_bes(
    hp_name: str | Sequence[str],
    be_name: str,
    policy: Policy | str,
    slo: float,
    *,
    platform: PlatformConfig = TABLE1_PLATFORM,
    max_cores: int | None = None,
    precision: str = "exact",
    kernel: str = "auto",
) -> AdmissionPlan:
    """Binary-search the largest BE count that keeps the HP SLO.

    ``hp_name`` may be one catalog name or a sequence of names (a
    multi-HP mix, judged on its worst HP); ``policy`` may be a
    :class:`Policy` instance or a zoo policy name. Probes are memoised
    in the returned plan; the search runs O(log max_bes) experiments.
    """
    policy = _resolve_policy(policy)
    hp_names = (
        (hp_name,) if isinstance(hp_name, str) else tuple(hp_name)
    )
    if not hp_names:
        raise ValueError("need at least one HP application")
    limit = (max_cores or platform.n_cores) - len(hp_names)
    if limit < 1:
        raise ValueError("need room for at least one BE")
    probes: dict[int, PairResult | MultiResult] = {}

    def probe(n_be: int) -> PairResult | MultiResult:
        if len(hp_names) == 1:
            return run_pair(
                make_mix(hp_names[0], be_name, n_be=n_be),
                policy,
                platform,
                precision=precision,
                kernel=kernel,
            )
        return run_multi(
            make_multi_mix(hp_names, (be_name,) * n_be),
            policy,
            platform,
            precision=precision,
            kernel=kernel,
        )

    def ok(n_be: int) -> bool:
        result = probes.get(n_be)
        if result is None:
            result = probe(n_be)
            probes[n_be] = result
        return slo_achieved(hp_admission_metric(result), slo)

    lo, hi = 0, limit  # invariant: lo admissible (0 trivially), hi+1 not probed
    if ok(limit):
        lo = limit
    else:
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if ok(mid):
                lo = mid
            else:
                hi = mid
    return AdmissionPlan(
        hp_name="+".join(hp_names),
        be_name=be_name,
        policy=policy.name,
        slo=slo,
        probes=probes,
        max_bes=lo,
        hp_names=hp_names,
    )
