"""Effective Utilisation (paper Equation 1).

``EFU = IPC_norm_hmean``: the harmonic mean of every co-located
application's IPC normalised to its isolated IPC. Values lie in (0, 1];
1 means consolidation cost nothing. The harmonic mean (rather than
arithmetic) penalises unfairness: one starved application drags the whole
index down, which is exactly why CT scores poorly as BEs multiply
(Figure 6).
"""

from __future__ import annotations

from typing import Iterable

from repro.util.stats import hmean

__all__ = ["efu"]


def efu(normalised_ipcs: Iterable[float]) -> float:
    """Effective utilisation of one consolidated workload.

    ``normalised_ipcs`` holds ``IPC_corun / IPC_alone`` for the HP *and*
    every BE instance. Each must be positive; values marginally above 1
    (measurement jitter) are accepted, but anything above 1.5 is rejected
    as a probable normalisation bug.
    """
    values = list(normalised_ipcs)
    if not values:
        raise ValueError("efu needs at least one application")
    for v in values:
        if v <= 0:
            raise ValueError(f"normalised IPC must be > 0, got {v}")
        if v > 1.5:
            raise ValueError(
                f"normalised IPC {v} > 1.5 — wrong isolation baseline?"
            )
    # Clamp at 1: time-averaged IPC over an experiment that ends mid-run can
    # sit epsilon above the solo average when the truncated run stopped in a
    # high-IPC phase; EFU is defined on [0, 1].
    return min(1.0, hmean(values))
