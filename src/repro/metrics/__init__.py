"""Evaluation metrics: HP slowdown, EFU (Eq. 1), SLO conformance, SUCI
(Eq. 4-5)."""

from repro.metrics.efu import efu
from repro.metrics.slo import PAPER_SLOS, slo_achieved
from repro.metrics.suci import PAPER_LAMBDAS, suci

__all__ = ["efu", "PAPER_SLOS", "slo_achieved", "PAPER_LAMBDAS", "suci"]
