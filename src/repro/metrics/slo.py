"""SLO conformance (paper Section 4.1).

The reproduction follows the paper's black-box QoS definition: an HP
application with an SLO of, say, 90 % meets its Service-Level Objective iff
its co-run IPC is at least 90 % of its isolated IPC. The standard SLO grid
evaluated by Figures 7 and 8 is exported here.
"""

from __future__ import annotations

from repro.util.validation import check_positive

__all__ = ["slo_achieved", "PAPER_SLOS"]

#: The SLO levels of Figures 7 and 8.
PAPER_SLOS: tuple[float, ...] = (0.80, 0.85, 0.90, 0.95)


def slo_achieved(hp_normalised_ipc: float, slo: float) -> bool:
    """Whether HP's QoS target is met (Equation 5's indicator).

    ``slo`` is a fraction in (0, 1], e.g. ``0.9`` for "within 90 % of
    isolated performance".
    """
    check_positive("hp_normalised_ipc", hp_normalised_ipc)
    if not 0.0 < slo <= 1.0:
        raise ValueError(f"slo must be in (0, 1], got {slo}")
    return hp_normalised_ipc >= slo
