"""SLO-Effective-Utilisation Combined Index (paper Equations 4-5).

``SUCI = c_SLO * EFU^lambda`` where ``c_SLO`` is 1 iff the HP met its SLO
and 0 otherwise. A missed SLO zeroes the index *on purpose*: BE throughput
gains that violated the SLA must not count (Section 4.2.2). ``lambda``
weighs utilisation against SLO conformance: >1 favours utilisation, <1
favours conformance; Figure 8 evaluates lambda ∈ {0.5, 1, 2}.
"""

from __future__ import annotations

from repro.metrics.slo import slo_achieved
from repro.util.validation import check_fraction, check_positive

__all__ = ["suci", "PAPER_LAMBDAS"]

#: The weightings evaluated in Figure 8.
PAPER_LAMBDAS: tuple[float, ...] = (0.5, 1.0, 2.0)


def suci(
    hp_normalised_ipc: float,
    efu_value: float,
    slo: float,
    lam: float = 1.0,
) -> float:
    """Combined index for one consolidated workload.

    Returns 0 when the SLO is missed (SLA violation), otherwise
    ``EFU ** lam`` — a value in (0, 1] that rises with server utilisation.
    """
    check_fraction("efu_value", efu_value)
    if efu_value <= 0.0:
        raise ValueError("efu_value must be > 0")
    check_positive("lam", lam)
    if not slo_achieved(hp_normalised_ipc, slo):
        return 0.0
    return efu_value**lam
