"""Minimal REST front-end for a running serve daemon.

A hand-rolled ``asyncio.start_server`` HTTP/1.1 endpoint — the container
ships no web framework, and the surface is four routes of JSON:

* ``GET /healthz``  — liveness + degradation flag
* ``GET /state``    — the daemon summary (placement, counters, digest)
* ``GET /telemetry``— the :mod:`repro.obs` metrics snapshot + supervisor
  down reports (the JSONL event stream is the obs event log itself)
* ``POST /submit``  — ``{"job_kind": "hp"|"be", "app": ..., "job_id"?}``
* ``POST /depart``  — ``{"job_id": ...}``

Writes go through :meth:`ServeDaemon.apply_external`, which validates
against the plane, appends to the durable events file, then applies —
so API-driven history replays after a crash exactly like
generator-driven history, and a rejected submit (400) never reaches the
log. While the daemon is still replaying its stream, writes return 503.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs import get_registry
from repro.serve.daemon import ReplayInProgressError, ServeDaemon

__all__ = ["ServeApi"]

_MAX_BODY = 64 * 1024


class ServeApi:
    """Serve the four-route JSON API for one daemon."""

    def __init__(
        self, daemon: ServeDaemon, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.daemon = daemon
        self.host = host
        self.port = port  #: 0 = ephemeral; real port set by :meth:`start`.
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request plumbing --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - API boundary
            status, payload = 500, {"error": str(exc)}
        body = json.dumps(payload).encode("utf-8")
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            503: "Service Unavailable",
        }.get(status, "Internal Server Error")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            + body
        )
        try:
            await writer.drain()
        finally:
            writer.close()

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict]:
        request = (await reader.readline()).decode("ascii", "replace").strip()
        parts = request.split(" ")
        if len(parts) != 3:
            return 400, {"error": f"bad request line: {request!r}"}
        method, path, _version = parts
        length = 0
        while True:
            line = (await reader.readline()).decode("ascii", "replace")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        if length > _MAX_BODY:
            return 400, {"error": "body too large"}
        body: dict = {}
        if length:
            try:
                body = json.loads(await reader.readexactly(length))
            except (json.JSONDecodeError, asyncio.IncompleteReadError):
                return 400, {"error": "invalid JSON body"}
        return await self._route(method, path, body)

    # -- routes ------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: dict
    ) -> tuple[int, dict]:
        plane = self.daemon.plane
        if method == "GET" and path == "/healthz":
            return 200, {
                "ok": True,
                "degraded": plane.degraded(),
                "applied_seq": plane.applied_seq,
            }
        if method == "GET" and path == "/state":
            return 200, self.daemon.summary()
        if method == "GET" and path == "/telemetry":
            return 200, {
                "metrics": get_registry().snapshot(),
                "downs_reported": [
                    {"node_id": nid, "reason": reason}
                    for nid, reason in self.daemon.downs_reported
                ],
            }
        if method == "POST" and path == "/submit":
            job_kind = body.get("job_kind")
            app = body.get("app")
            if job_kind not in ("hp", "be") or not app:
                return 400, {
                    "error": "submit needs job_kind in {hp, be} and app"
                }
            try:
                outcome = await self.daemon.apply_external(
                    "submit",
                    job_kind=job_kind,
                    app=app,
                    job_id=body.get("job_id"),
                )
            except ReplayInProgressError as exc:
                return 503, {"error": str(exc)}
            except ValueError as exc:
                return 400, {"error": str(exc)}
            return 200, outcome
        if method == "POST" and path == "/depart":
            job_id = body.get("job_id")
            if not job_id:
                return 400, {"error": "depart needs job_id"}
            try:
                outcome = await self.daemon.apply_external(
                    "depart", job_id=job_id
                )
            except ReplayInProgressError as exc:
                return 503, {"error": str(exc)}
            return 200, outcome
        return 404, {"error": f"no route for {method} {path}"}
