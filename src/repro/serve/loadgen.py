"""Seeded load generator: thousands of job arrivals and departures.

The generator produces the *workload half* of a serve run — ``submit``
and ``depart`` events only; :mod:`repro.serve.chaos` weaves the fault
half in afterwards. Everything is driven by :func:`repro.util.rng.
make_rng`, so one seed fully determines the stream: the same seed always
yields the same jobs in the same order, which is the precondition for
the clean-run/chaos-run digest comparison.

Default app pools are small, fixed slices of the paper catalog chosen
for contrast (cache-insensitive HPs like ``namd1``/``povray1`` beside
thrashing BEs like ``lbm1``/``milc1``) — and kept small on purpose, so a
long stream revisits the same (HP, BE) admission pairings and the
memoised :class:`~repro.serve.placement.AdmissionCache` stays warm.
"""

from __future__ import annotations

from typing import Sequence

from repro.serve.events import ServeEvent
from repro.util.rng import make_rng
from repro.workloads import app_names

__all__ = ["DEFAULT_BE_APPS", "DEFAULT_HP_APPS", "generate_events"]

#: Latency-critical candidates (low cache pressure — admit many BEs).
DEFAULT_HP_APPS = ("namd1", "povray1", "gamess1", "h264ref1")
#: Batch candidates spanning the pressure spectrum.
DEFAULT_BE_APPS = ("bzip22", "lbm1", "milc1", "soplex1", "hmmer1", "astar1")


def generate_events(
    seed: int,
    n_events: int,
    *,
    hp_apps: Sequence[str] = DEFAULT_HP_APPS,
    be_apps: Sequence[str] = DEFAULT_BE_APPS,
    hp_frac: float = 0.12,
    depart_frac: float = 0.45,
) -> list[ServeEvent]:
    """Generate ``n_events`` submit/depart events under one seed.

    Each step is a departure with probability ``depart_frac`` (when any
    submitted job remains to depart), else a submission; submissions are
    HP with probability ``hp_frac``. Departures pick uniformly from the
    not-yet-departed submissions — including rejected or still-pending
    ones, which the plane treats as no-ops, mirroring clients that never
    learn their job was refused. Sequence numbers are ``0..n_events-1``.
    """
    if n_events < 1:
        raise ValueError(f"n_events must be >= 1, got {n_events}")
    if not 0.0 <= hp_frac <= 1.0:
        raise ValueError(f"hp_frac must be in [0, 1], got {hp_frac}")
    if not 0.0 <= depart_frac < 1.0:
        raise ValueError(f"depart_frac must be in [0, 1), got {depart_frac}")
    known = set(app_names())
    for app in tuple(hp_apps) + tuple(be_apps):
        if app not in known:
            raise ValueError(f"unknown catalog app {app!r}")
    if not hp_apps or not be_apps:
        raise ValueError("need at least one HP and one BE app")

    rng = make_rng(seed)
    events: list[ServeEvent] = []
    outstanding: list[str] = []  # submitted, not yet departed
    n_jobs = 0
    for seq in range(n_events):
        if outstanding and rng.random() < depart_frac:
            index = int(rng.integers(len(outstanding)))
            job_id = outstanding.pop(index)
            events.append(ServeEvent(seq=seq, kind="depart", job_id=job_id))
            continue
        job_id = f"j{n_jobs:05d}"
        n_jobs += 1
        if rng.random() < hp_frac:
            job_kind = "hp"
            app = hp_apps[int(rng.integers(len(hp_apps)))]
        else:
            job_kind = "be"
            app = be_apps[int(rng.integers(len(be_apps)))]
        events.append(
            ServeEvent(
                seq=seq,
                kind="submit",
                job_id=job_id,
                job_kind=job_kind,
                app=app,
            )
        )
        outstanding.append(job_id)
    return events
