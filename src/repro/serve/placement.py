"""Admission + placement: the control plane's deterministic core.

The plane is **declarative**: it never patches placement incrementally.
After every applied event it recomputes the *canonical placement* — a
pure function of (live jobs in arrival order, healthy node set) — and
reconciles the fleet to it. That one design choice buys the whole
robustness story:

* a node going down is just "reconcile over the survivors": its jobs
  drain to other nodes or queue behind admission, never dropping;
* a node coming back is "reconcile over the larger set": jobs migrate
  home, and the state converges to exactly what a fault-free history
  would have produced;
* therefore a seeded chaos run and its clean twin end in byte-identical
  terminal placement (the ``make serve-smoke`` contract) — determinism
  is structural, not an accident of scheduling.

Admission ("can this job *ever* run here?") is judged against the full
configured roster regardless of health, so accept/reject decisions are
also chaos-invariant: degraded capacity queues jobs, it never rejects
them. The headroom model is the paper's own admission search
(:func:`repro.core.admission.find_max_bes`, memoised per (HP, BE)
pairing through the global solver caches): a node hosting HP *h* admits
at most ``min_t max_bes(h, t)`` BEs over the resident BE types *t*, and
an HP-less node admits up to ``n_cores - 1`` unmanaged BEs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.admission import find_max_bes
from repro.obs import get_event_log, get_registry
from repro.serve.events import ServeEvent
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM

__all__ = [
    "AdmissionCache",
    "ControlPlane",
    "Job",
    "PlaneConfig",
    "JOB_STATUSES",
    "NODE_HEALTH",
]

JOB_STATUSES = ("placed", "pending", "rejected", "departed")
NODE_HEALTH = ("healthy", "crashed", "hung", "partitioned")

#: Node health states excluded from placement.
_DOWN = ("crashed", "hung", "partitioned")

_CATALOG_NAMES: frozenset[str] | None = None


def _catalog_names() -> frozenset[str]:
    """Valid app names, resolved once (submit validation)."""
    global _CATALOG_NAMES
    if _CATALOG_NAMES is None:
        from repro.workloads import app_names

        _CATALOG_NAMES = frozenset(app_names())
    return _CATALOG_NAMES


@dataclass
class Job:
    """One submitted job and where it stands."""

    job_id: str
    kind: str  #: ``"hp"`` or ``"be"``.
    app: str   #: Catalog application name.
    seq: int   #: Arrival order (the canonical placement order).
    status: str = "pending"
    node_id: str | None = None

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "app": self.app,
            "seq": self.seq,
            "status": self.status,
            "node_id": self.node_id,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Job":
        return cls(
            job_id=raw["job_id"],
            kind=raw["kind"],
            app=raw["app"],
            seq=int(raw["seq"]),
            status=raw.get("status", "pending"),
            node_id=raw.get("node_id"),
        )


@dataclass(frozen=True)
class PlaneConfig:
    """Serializable control-plane configuration."""

    node_ids: tuple[str, ...]
    policy: str = "DICER"
    slo: float = 0.9
    precision: str = "fast"
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if not self.node_ids:
            raise ValueError("need at least one node")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ValueError("node ids must be unique")
        if not 0.0 < self.slo <= 1.0:
            raise ValueError(f"slo must be in (0, 1], got {self.slo}")

    @classmethod
    def for_nodes(cls, n_nodes: int, **kwargs) -> "PlaneConfig":
        """A roster of ``n_nodes`` nodes named ``node00..``."""
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        return cls(
            node_ids=tuple(f"node{i:02d}" for i in range(n_nodes)), **kwargs
        )

    def to_dict(self) -> dict:
        return {
            "node_ids": list(self.node_ids),
            "policy": self.policy,
            "slo": self.slo,
            "precision": self.precision,
            "kernel": self.kernel,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "PlaneConfig":
        return cls(
            node_ids=tuple(raw["node_ids"]),
            policy=raw.get("policy", "DICER"),
            slo=float(raw.get("slo", 0.9)),
            precision=raw.get("precision", "fast"),
            kernel=raw.get("kernel", "auto"),
        )


class AdmissionCache:
    """Memoised SLO-headroom lookups backed by the admission search.

    ``max_bes(hp, be)`` answers "how many BEs of this type can a node
    running this HP admit under the configured policy and SLO?" — one
    :func:`find_max_bes` binary search on first use, a dict hit after
    (and the underlying solver probes share the global steady-state
    cache, so even misses are mostly memo traffic).
    """

    def __init__(
        self,
        *,
        policy: str,
        slo: float,
        platform: PlatformConfig = TABLE1_PLATFORM,
        precision: str = "fast",
        kernel: str = "auto",
    ) -> None:
        self.policy = policy
        self.slo = slo
        self.platform = platform
        self.precision = precision
        self.kernel = kernel
        self._max_bes: dict[tuple[str, str], int] = {}

    def max_bes(self, hp_app: str | None, be_app: str) -> int:
        """Admissible BE count for ``be_app`` on a node hosting ``hp_app``.

        ``hp_app=None`` (an HP-less batch node) admits up to the
        physical core count minus the reserved HP core.
        """
        if hp_app is None:
            return self.platform.n_cores - 1
        key = (hp_app, be_app)
        cached = self._max_bes.get(key)
        if cached is None:
            plan = find_max_bes(
                hp_app,
                be_app,
                self.policy,
                self.slo,
                platform=self.platform,
                precision=self.precision,
                kernel=self.kernel,
            )
            cached = plan.max_bes
            self._max_bes[key] = cached
            get_registry().counter("serve.admission.searches").inc()
        return cached


@dataclass
class _NodeEntry:
    """Plane-side view of one node."""

    health: str = "healthy"
    restarts: int = 0

    def to_dict(self) -> dict:
        return {"health": self.health, "restarts": self.restarts}

    @classmethod
    def from_dict(cls, raw: dict) -> "_NodeEntry":
        return cls(
            health=raw.get("health", "healthy"),
            restarts=int(raw.get("restarts", 0)),
        )


def _zero_counters() -> dict[str, int]:
    return {
        "events_applied": 0,
        "submitted": 0,
        "accepted": 0,
        "rejected": 0,
        "departed": 0,
        "migrations": 0,
        "drains": 0,
        "node_crashes": 0,
        "node_hangs": 0,
        "node_partitions": 0,
        "node_recoveries": 0,
        "placement_faults": 0,
        "placement_retries": 0,
        "placement_failures": 0,
    }


class ControlPlane:
    """The deterministic placement state machine.

    All mutation flows through :meth:`apply_event`; every application
    ends in :meth:`reconcile`, so observers (API, snapshots, digests)
    always see a canonically-placed fleet. The plane holds **no clocks
    and no RNG** — state is a pure fold over the event sequence, which
    is what makes snapshots, restarts and chaos replays exact.
    """

    def __init__(
        self,
        config: PlaneConfig,
        *,
        admission: AdmissionCache | None = None,
        platform: PlatformConfig = TABLE1_PLATFORM,
    ) -> None:
        self.config = config
        self.platform = platform
        self.admission = admission or AdmissionCache(
            policy=config.policy,
            slo=config.slo,
            platform=platform,
            precision=config.precision,
            kernel=config.kernel,
        )
        self.jobs: dict[str, Job] = {}
        self.nodes: dict[str, _NodeEntry] = {
            nid: _NodeEntry() for nid in config.node_ids
        }
        self.counters: dict[str, int] = _zero_counters()
        self.applied_seq: int = -1
        #: Wall-clock seconds spent applying events, accumulated across
        #: daemon restarts (monitor throughput; NOT part of the digest).
        self.elapsed_s: float = 0.0

    # -- derived views ---------------------------------------------------

    def jobs_in_order(self) -> list[Job]:
        """Every job ever submitted, in arrival order."""
        return sorted(self.jobs.values(), key=lambda j: j.seq)

    def live_jobs(self) -> list[Job]:
        """Accepted jobs still in the system, in arrival order."""
        return [
            j for j in self.jobs_in_order() if j.status in ("placed", "pending")
        ]

    def healthy_nodes(self) -> list[str]:
        """Roster order, healthy only."""
        return [
            nid
            for nid in self.config.node_ids
            if self.nodes[nid].health == "healthy"
        ]

    def degraded(self) -> bool:
        """Whether any node is currently down."""
        return any(e.health in _DOWN for e in self.nodes.values())

    def node_assignment(self, node_id: str) -> tuple[Job | None, list[Job]]:
        """(HP job or None, BE jobs in arrival order) placed on a node."""
        hp = None
        bes = []
        for job in self.jobs_in_order():
            if job.status != "placed" or job.node_id != node_id:
                continue
            if job.kind == "hp":
                hp = job
            else:
                bes.append(job)
        return hp, bes

    # -- canonical placement ---------------------------------------------

    def _be_capacity(self, hp_app: str | None, be_types) -> int:
        """BE slots on a node hosting ``hp_app`` and BE types ``be_types``."""
        phys = self.platform.n_cores - 1
        if hp_app is None or not be_types:
            return phys
        return min(
            phys,
            min(self.admission.max_bes(hp_app, t) for t in set(be_types)),
        )

    def _place_one(self, job: Job, hp_on: dict, bes_on: dict) -> str | None:
        """Greedy best-headroom node for ``job`` given partial placement."""
        best = None
        best_headroom = None
        for nid in hp_on:  # insertion = roster order → deterministic ties
            if job.kind == "hp":
                if hp_on[nid] is not None:
                    continue
                cap = self._be_capacity(job.app, bes_on[nid])
                headroom = cap - len(bes_on[nid])
                if headroom < 0:
                    continue  # resident BEs inadmissible under this HP
            else:
                cap = self._be_capacity(
                    hp_on[nid], list(bes_on[nid]) + [job.app]
                )
                headroom = cap - len(bes_on[nid])
                if headroom < 1:
                    continue
            if best is None or headroom > best_headroom:
                best, best_headroom = nid, headroom
        return best

    def canonical_placement(
        self, jobs: list[Job], node_ids: list[str]
    ) -> tuple[dict[str, str], list[str]]:
        """Place ``jobs`` (arrival order) onto ``node_ids`` greedily.

        Pure function of its arguments: bin-pack by predicted SLO
        headroom, preferring the node with the most remaining admissible
        slots (load balancing keeps the SLO safety margin widest),
        roster order breaking ties. Returns (job_id → node_id,
        overflowed job_ids).
        """
        hp_on: dict[str, str | None] = {nid: None for nid in node_ids}
        bes_on: dict[str, list[str]] = {nid: [] for nid in node_ids}
        assignment: dict[str, str] = {}
        overflow: list[str] = []
        for job in jobs:
            nid = self._place_one(job, hp_on, bes_on)
            if nid is None:
                overflow.append(job.job_id)
            else:
                assignment[job.job_id] = nid
                if job.kind == "hp":
                    hp_on[nid] = job.app
                else:
                    bes_on[nid].append(job.app)
        return assignment, overflow

    def _admits(self, candidate: Job) -> bool:
        """Admission check against the FULL roster, ignoring health.

        Chaos-invariant by construction: a degraded plane queues what it
        cannot place, but accepts exactly what a healthy plane would.
        """
        jobs = self.live_jobs() + [candidate]
        assignment, overflow = self.canonical_placement(
            jobs, list(self.config.node_ids)
        )
        return candidate.job_id in assignment

    # -- reconciliation --------------------------------------------------

    def reconcile(self) -> dict[str, int]:
        """Converge the fleet to the canonical placement.

        Returns ``{"migrations": ..., "drains": ..., "placements": ...}``
        for this pass (also accumulated into :attr:`counters`).
        """
        live = self.live_jobs()
        assignment, _overflow = self.canonical_placement(
            live, self.healthy_nodes()
        )
        migrations = drains = placements = 0
        for job in live:
            new = assignment.get(job.job_id)
            old = job.node_id if job.status == "placed" else None
            if new != old:
                if new is None:
                    drains += 1
                elif old is None:
                    placements += 1
                else:
                    migrations += 1
            job.node_id = new
            job.status = "placed" if new is not None else "pending"
        self.counters["migrations"] += migrations
        self.counters["drains"] += drains
        if migrations or drains:
            registry = get_registry()
            registry.counter("serve.migrations").inc(migrations)
            registry.counter("serve.drains").inc(drains)
            log = get_event_log()
            if log.enabled:
                log.emit(
                    "serve.reconcile",
                    migrations=migrations,
                    drains=drains,
                    placements=placements,
                    degraded=self.degraded(),
                )
        return {
            "migrations": migrations,
            "drains": drains,
            "placements": placements,
        }

    # -- the state machine -----------------------------------------------

    def validate_event(self, event: ServeEvent) -> None:
        """Raise ``ValueError`` iff :meth:`apply_event` would reject this.

        A pure pre-check — no mutation, no reconcile. The daemon's
        write-ahead path runs it *before* committing an event to the
        durable stream, so a bad input (unknown app, duplicate job id,
        unknown node) is refused up front and can never poison the
        replay log with a line that fails on every restart.
        """
        if event.seq <= self.applied_seq:
            raise ValueError(
                f"event seq {event.seq} already applied "
                f"(applied_seq={self.applied_seq})"
            )
        if not hasattr(self, f"_on_{event.kind}"):
            raise ValueError(f"unhandled event kind {event.kind!r}")
        if event.kind == "submit":
            self._check_submit(event)
        elif event.kind != "depart":  # node_* / assign_fault
            self._node(event)
            if event.kind == "assign_fault" and event.count < 0:
                raise ValueError(
                    f"assign_fault count must be >= 0, got {event.count}"
                )

    def apply_event(self, event: ServeEvent) -> dict:
        """Apply one ordered event and reconcile; returns an outcome row.

        Events must arrive in strictly increasing ``seq`` order; a stale
        event (``seq <= applied_seq``) is the replay-overlap case after a
        restart and raises — feeders must skip already-applied events.
        """
        self.validate_event(event)
        outcome: dict = {"seq": event.seq, "kind": event.kind}
        outcome.update(getattr(self, f"_on_{event.kind}")(event) or {})
        self.applied_seq = event.seq
        self.counters["events_applied"] += 1
        self.reconcile()
        log = get_event_log()
        if log.enabled:
            payload = dict(outcome)
            payload["event"] = payload.pop("kind")  # 'kind' is emit()'s own
            log.emit("serve.event", **payload)
        return outcome

    # -- event handlers --------------------------------------------------

    def _check_submit(self, event: ServeEvent) -> None:
        if not event.job_id or not event.app or event.job_kind not in (
            "hp",
            "be",
        ):
            raise ValueError(f"malformed submit event: {event}")
        if event.app not in _catalog_names():
            raise ValueError(f"unknown catalog app {event.app!r}")
        if event.job_id in self.jobs:
            raise ValueError(f"duplicate job id {event.job_id!r}")

    def _on_submit(self, event: ServeEvent) -> dict:
        self._check_submit(event)
        job = Job(
            job_id=event.job_id,
            kind=event.job_kind,
            app=event.app,
            seq=event.seq,
        )
        self.counters["submitted"] += 1
        registry = get_registry()
        registry.counter("serve.submitted").inc()
        if self._admits(job):
            job.status = "pending"  # reconcile() promotes to placed
            self.jobs[job.job_id] = job
            self.counters["accepted"] += 1
            registry.counter("serve.accepted").inc()
            return {"job_id": job.job_id, "outcome": "accepted"}
        job.status = "rejected"
        self.jobs[job.job_id] = job
        self.counters["rejected"] += 1
        registry.counter("serve.rejected").inc()
        return {"job_id": job.job_id, "outcome": "rejected"}

    def _on_depart(self, event: ServeEvent) -> dict:
        job = self.jobs.get(event.job_id or "")
        if job is None or job.status not in ("placed", "pending"):
            # Departure of an unknown/rejected/already-gone job: a no-op
            # (the load generator does not track admission outcomes).
            return {"job_id": event.job_id, "outcome": "noop"}
        job.status = "departed"
        job.node_id = None
        self.counters["departed"] += 1
        get_registry().counter("serve.departed").inc()
        return {"job_id": job.job_id, "outcome": "departed"}

    def _node(self, event: ServeEvent) -> _NodeEntry:
        entry = self.nodes.get(event.node_id or "")
        if entry is None:
            raise ValueError(f"unknown node {event.node_id!r}")
        return entry

    def _mark_down(self, event: ServeEvent, health: str, counter: str) -> dict:
        entry = self._node(event)
        was = entry.health
        entry.health = health
        self.counters[counter] += 1
        get_registry().counter(f"serve.{counter}").inc()
        log = get_event_log()
        if log.enabled:
            log.emit(
                "serve.node_down",
                node=event.node_id,
                health=health,
                previous=was,
            )
        return {"node_id": event.node_id, "outcome": health}

    def _on_node_crash(self, event: ServeEvent) -> dict:
        return self._mark_down(event, "crashed", "node_crashes")

    def _on_node_hang(self, event: ServeEvent) -> dict:
        return self._mark_down(event, "hung", "node_hangs")

    def _on_node_partition(self, event: ServeEvent) -> dict:
        return self._mark_down(event, "partitioned", "node_partitions")

    def _on_node_recover(self, event: ServeEvent) -> dict:
        entry = self._node(event)
        was = entry.health
        entry.health = "healthy"
        if was == "crashed":
            # A crash lost the node's controller state; recovery is a
            # restart (the node-side counterpart of the daemon's own
            # snapshot-restore, DESIGN.md §14).
            entry.restarts += 1
        self.counters["node_recoveries"] += 1
        get_registry().counter("serve.node_recoveries").inc()
        log = get_event_log()
        if log.enabled:
            log.emit("serve.node_recover", node=event.node_id, previous=was)
        return {"node_id": event.node_id, "outcome": "recovered", "was": was}

    def _on_assign_fault(self, event: ServeEvent) -> dict:
        # Plane state is untouched — the daemon arms the node runtime's
        # fault injector; the counter records the injection for reports.
        self._node(event)  # validate the target
        self.counters["placement_faults"] += event.count
        return {
            "node_id": event.node_id,
            "outcome": "armed",
            "count": event.count,
        }

    # -- derived artefacts ------------------------------------------------

    def placement_state(self) -> dict:
        """The canonical, chaos-invariant placement description.

        Everything here is a pure function of the applied job history:
        per-node assignments, the admission queue, rejected ids and the
        job accounting. Path-dependent observables (migration counts,
        node restarts, elapsed time) are deliberately excluded — see
        :meth:`digest`.
        """
        nodes = {}
        for nid in self.config.node_ids:
            hp, bes = self.node_assignment(nid)
            nodes[nid] = {
                "hp": [hp.job_id, hp.app] if hp else None,
                "bes": [[b.job_id, b.app] for b in bes],
            }
        by_status = {status: 0 for status in JOB_STATUSES}
        for job in self.jobs.values():
            by_status[job.status] += 1
        return {
            "nodes": nodes,
            "pending": [
                [j.job_id, j.kind, j.app]
                for j in self.jobs_in_order()
                if j.status == "pending"
            ],
            "rejected": [
                j.job_id
                for j in self.jobs_in_order()
                if j.status == "rejected"
            ],
            "jobs": by_status,
            "submitted": self.counters["submitted"],
        }

    def digest(self) -> str:
        """SHA-256 of the canonical placement state.

        The ``make serve-smoke`` contract: a chaos run whose nodes have
        all recovered ends with the same digest as the clean run.
        """
        canonical = json.dumps(
            self.placement_state(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def summary(self) -> dict:
        """Accounting + health overview (monitor / API payload)."""
        state = self.placement_state()
        return {
            "applied_seq": self.applied_seq,
            "digest": self.digest(),
            "degraded": self.degraded(),
            "nodes": {
                nid: {
                    "health": self.nodes[nid].health,
                    "restarts": self.nodes[nid].restarts,
                    "hp": state["nodes"][nid]["hp"],
                    "n_bes": len(state["nodes"][nid]["bes"]),
                }
                for nid in self.config.node_ids
            },
            "jobs": state["jobs"],
            "counters": dict(self.counters),
            "elapsed_s": self.elapsed_s,
        }

    # -- snapshots ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Full serializable state (the snapshot payload)."""
        return {
            "config": self.config.to_dict(),
            "applied_seq": self.applied_seq,
            "jobs": [j.to_dict() for j in self.jobs_in_order()],
            "nodes": {
                nid: entry.to_dict() for nid, entry in self.nodes.items()
            },
            "counters": dict(self.counters),
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_snapshot(
        cls,
        state: dict,
        *,
        admission: AdmissionCache | None = None,
        platform: PlatformConfig = TABLE1_PLATFORM,
    ) -> "ControlPlane":
        """Rebuild a plane from :meth:`snapshot_state` output."""
        plane = cls(
            PlaneConfig.from_dict(state["config"]),
            admission=admission,
            platform=platform,
        )
        plane.applied_seq = int(state["applied_seq"])
        plane.jobs = {
            raw["job_id"]: Job.from_dict(raw) for raw in state["jobs"]
        }
        for nid, raw in state.get("nodes", {}).items():
            if nid in plane.nodes:
                plane.nodes[nid] = _NodeEntry.from_dict(raw)
        counters = _zero_counters()
        counters.update(state.get("counters", {}))
        plane.counters = counters
        plane.elapsed_s = float(state.get("elapsed_s", 0.0))
        return plane
