"""Per-node runtime and its asyncio heartbeat supervisor.

A :class:`NodeRuntime` is the daemon's handle on one consolidation node:
it holds the node's current assignment (the HP and BE apps the control
plane placed there), actuates placements through a persistent
:class:`~repro.rdt.faulty.NodeFaultyRdt` boundary, and — on demand —
*evaluates* the assignment by building a fresh simulated server and
driving it with the configured policy (DICER or any zoo policy via
``policy_from_name``) for a few monitoring periods.

The fault boundary outlives individual evaluations: every simulator the
runtime builds is rebound into the same :class:`NodeFaultyRdt`, so a
crash injected between evaluations still fails the next heartbeat probe,
the next actuation, and the next evaluation alike. That is the "fault
injection at the node boundary" of DESIGN.md §14 — the supervisor sees
node loss exactly where a real fleet would: at the RPC surface.

:class:`NodeSupervisor` is the liveness side: an asyncio loop probing
the boundary on a deterministic per-node jittered interval (the same
:func:`~repro.util.lease.jittered_interval` the campaign queue uses, so
fleet heartbeats decorrelate) with a deadline around each probe — a hung
node misses its deadline, an unreachable one raises, and either way the
daemon's ``on_down`` callback fires after ``miss_budget`` consecutive
misses.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Sequence

from repro.core.allocation import Allocation
from repro.obs import get_event_log, get_registry
from repro.rdt.faulty import NodeFaultKind, NodeFaultyRdt, RdtUnavailableError
from repro.rdt.interface import PeriodSample, RdtBackend
from repro.rdt.simulated import SimulatedRdt
from repro.serve.placement import PlaneConfig
from repro.sim.kernels import use_kernel
from repro.sim.partition import PartitionSpec
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.sim.server import Server
from repro.util.lease import jittered_interval
from repro.workloads import get_app

__all__ = ["NodeRuntime", "NodeSupervisor"]


class _IdleRdt(RdtBackend):
    """The boundary's inner backend while no evaluation is running.

    An idle node still answers heartbeats: probes return a degenerate
    all-zero sample. Only the :class:`NodeFaultyRdt` wrapper decides
    whether the node is reachable at all.
    """

    def __init__(self, total_ways: int) -> None:
        self._total_ways = total_ways

    @property
    def total_ways(self) -> int:
        return self._total_ways

    @property
    def finished(self) -> bool:
        return False

    def apply(self, allocation: "Allocation") -> None:
        pass

    def sample(self, period_s: float) -> PeriodSample:
        return PeriodSample(
            duration_s=period_s,
            hp_ipc=0.0,
            hp_mem_bytes_s=0.0,
            total_mem_bytes_s=0.0,
            hp_llc_occupancy_bytes=0.0,
        )


class NodeRuntime:
    """One node: assignment state + policy evaluation behind a boundary."""

    def __init__(
        self,
        node_id: str,
        config: PlaneConfig,
        *,
        platform: PlatformConfig = TABLE1_PLATFORM,
        hang_s: float = 0.01,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.platform = platform
        self.hp_app: str | None = None
        self.be_apps: tuple[str, ...] = ()
        #: Transient actuation faults still to fire (armed by chaos).
        self.armed_faults = 0
        self.assigns = 0
        self.evaluations = 0
        self.last_metrics: dict | None = None
        self._dirty = False
        self.boundary = NodeFaultyRdt(
            _IdleRdt(platform.llc_ways), hang_s=hang_s
        )

    # -- fault surface ----------------------------------------------------

    @property
    def available(self) -> bool:
        """Whether the node boundary currently answers."""
        return self.boundary.available

    def inject(
        self, kind: NodeFaultKind | str, *, persistent: bool = False
    ) -> None:
        """Arm a node-level fault (crash/hang/partition) at the boundary.

        ``persistent=True`` holds a hang or partition down until
        :meth:`restore` (the daemon uses it so the boundary stays down
        for exactly the window the plane reports the node down).
        """
        self.boundary.inject(kind, persistent=persistent)

    def restore(self) -> None:
        """Node repaired/restarted: the boundary answers again.

        A crash loses the node's in-memory controller state, so the next
        evaluation starts from a fresh policy — which it always does
        (evaluations build their policy from config), so restore is pure
        boundary repair.
        """
        self.boundary.restore()

    def arm_assign_faults(self, count: int) -> None:
        """Arm ``count`` transient placement-actuation failures."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.armed_faults += count

    # -- control-plane surface --------------------------------------------

    def probe(self) -> PeriodSample:
        """Heartbeat: one boundary touch; raises when the node is down."""
        return self.boundary.sample(1e-3)

    def assign(
        self, hp_app: str | None, be_apps: Sequence[str]
    ) -> None:
        """Actuate a placement decision onto the node.

        Raises :class:`RdtUnavailableError` while the node is down *or*
        while armed transient faults remain — the daemon's bounded retry
        absorbs the latter.
        """
        down = self.boundary.unavailable_kind
        if down is not None:
            raise RdtUnavailableError(down)
        if self.armed_faults > 0:
            self.armed_faults -= 1
            get_registry().counter("serve.assign_faults").inc()
            raise RdtUnavailableError(
                NodeFaultKind.PARTITION, "transient placement fault (armed)"
            )
        new = (hp_app, tuple(be_apps))
        if new != (self.hp_app, self.be_apps):
            self._dirty = True
        self.hp_app, self.be_apps = new
        self.assigns += 1

    @property
    def dirty(self) -> bool:
        """Whether the assignment changed since the last evaluation."""
        return self._dirty

    # -- evaluation --------------------------------------------------------

    def evaluate(self, *, periods: int = 2, max_time_s: float = 50.0) -> dict | None:
        """Drive the node's policy over its assignment for a few periods.

        Builds a fresh simulated server for the current assignment,
        rebinds it into the fault boundary, and runs the configured
        policy's monitor-decide-actuate loop ``periods`` times (static
        policies just advance time). Returns the last period's headline
        metrics, or ``None`` for an empty node. Raises
        :class:`RdtUnavailableError` if the boundary fails mid-loop.
        """
        if periods < 1:
            raise ValueError(f"periods must be >= 1, got {periods}")
        apps = [get_app(a) for a in (
            ((self.hp_app,) if self.hp_app else ()) + self.be_apps
        )]
        if not apps:
            self._dirty = False
            return None
        # Local import: queue pulls the policy zoo + experiment stack.
        from repro.experiments.queue import policy_from_name

        policy = policy_from_name(self.config.policy).fresh()
        managed = self.hp_app is not None
        with use_kernel(self.config.kernel):
            allocation = (
                policy.setup(self.platform.llc_ways) if managed else None
            )
            partition = (
                allocation.to_partition(len(apps))
                if allocation is not None
                else PartitionSpec.unmanaged(
                    len(apps), self.platform.llc_ways
                )
            )
            server = Server(
                self.platform,
                apps,
                partition,
                precision=self.config.precision,
            )
            self.boundary.rebind(SimulatedRdt(server))
            try:
                sample = None
                for _ in range(periods):
                    if self.boundary.finished or server.time >= max_time_s:
                        break
                    sample = self.boundary.sample(policy.period_s)
                    if managed and policy.dynamic:
                        new_allocation = policy.update(sample)
                        if new_allocation is not None:
                            self.boundary.apply(new_allocation)
            finally:
                self.boundary.rebind(_IdleRdt(self.platform.llc_ways))
        self.evaluations += 1
        self._dirty = False
        self.last_metrics = (
            None
            if sample is None
            else {
                "hp_app": self.hp_app,
                "n_bes": len(self.be_apps),
                "policy": policy.name,
                "hp_ipc": sample.hp_ipc,
                "total_bw_bytes_s": sample.total_mem_bytes_s,
                "sim_time_s": server.time,
            }
        )
        registry = get_registry()
        registry.counter("serve.evaluations").inc()
        log = get_event_log()
        if log.enabled and self.last_metrics is not None:
            log.emit("serve.evaluate", node=self.node_id, **self.last_metrics)
        return self.last_metrics


class NodeSupervisor:
    """Asyncio heartbeat + deadline supervision for one node runtime."""

    def __init__(
        self,
        runtime: NodeRuntime,
        *,
        interval_s: float = 0.02,
        deadline_s: float = 0.25,
        miss_budget: int = 2,
        on_down: Callable[[str, str], None] | None = None,
    ) -> None:
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        if miss_budget < 1:
            raise ValueError(f"miss_budget must be >= 1, got {miss_budget}")
        self.runtime = runtime
        #: Deterministic per-node jitter — the fleet's heartbeats spread
        #: out instead of thundering together (same helper as the
        #: campaign queue's worker heartbeats).
        self.interval_s = jittered_interval(interval_s, runtime.node_id)
        self.deadline_s = deadline_s
        self.miss_budget = miss_budget
        self.on_down = on_down
        self.beats = 0
        self.misses = 0
        self.consecutive_misses = 0
        self.reported_down = False
        self._stop = asyncio.Event()

    def stop(self) -> None:
        """Ask :meth:`run` to exit after the current probe."""
        self._stop.set()

    async def _probe_once(self) -> None:
        try:
            await asyncio.wait_for(
                asyncio.to_thread(self.runtime.probe), self.deadline_s
            )
        except (asyncio.TimeoutError, RdtUnavailableError) as exc:
            self.misses += 1
            self.consecutive_misses += 1
            reason = (
                "deadline"
                if isinstance(exc, asyncio.TimeoutError)
                else exc.kind.value
            )
            registry = get_registry()
            registry.counter("serve.heartbeat.misses").inc()
            log = get_event_log()
            if log.enabled:
                log.emit(
                    "serve.heartbeat.miss",
                    node=self.runtime.node_id,
                    reason=reason,
                    consecutive=self.consecutive_misses,
                )
            if (
                self.consecutive_misses >= self.miss_budget
                and not self.reported_down
            ):
                self.reported_down = True
                if self.on_down is not None:
                    self.on_down(self.runtime.node_id, reason)
        else:
            self.beats += 1
            self.consecutive_misses = 0
            self.reported_down = False
            get_registry().counter("serve.heartbeat.beats").inc()

    async def run(self) -> None:
        """Probe until :meth:`stop`; report via ``on_down`` on misses."""
        while not self._stop.is_set():
            await self._probe_once()
            try:
                await asyncio.wait_for(self._stop.wait(), self.interval_s)
            except asyncio.TimeoutError:
                continue
