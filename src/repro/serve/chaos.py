"""Chaos weaving: seeded fault injection into a serve event stream.

:func:`weave_chaos` takes the load generator's submit/depart stream and
splices node faults into it — crashes, hangs, partitions (each paired
with a guaranteed ``node_recover`` before the stream ends) and transient
``assign_fault`` arming events (absorbed by the daemon's bounded retry).
The weave is a pure function of its seed, so a chaos stream is exactly
reproducible, and because every woven fault recovers before the final
event, the terminal reconciliation runs over the full healthy roster:
the chaos run's placement digest must equal the clean run's
(``make serve-smoke`` asserts exactly this).

The plan also nominates a ``kill_seq`` — the event at which the smoke
test SIGTERMs the daemon to exercise snapshot-restore on top of the
woven node faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.serve.events import ServeEvent
from repro.util.rng import make_rng

__all__ = ["ChaosPlan", "weave_chaos"]

#: Node fault kinds a weave can splice in (each pairs with a recover).
_NODE_FAULTS = ("node_crash", "node_hang", "node_partition")


@dataclass(frozen=True)
class ChaosPlan:
    """A woven event stream plus its injection ledger."""

    #: The full stream (base + faults), seqs renumbered contiguously.
    events: tuple[ServeEvent, ...]
    #: Event seq at which the smoke test kills/restarts the daemon.
    kill_seq: int
    #: One row per injected fault: kind, node, seqs.
    faults: tuple[dict, ...]
    #: Requested faults that found no free window and were NOT injected
    #: (one ``{"kind": ...}`` row each) — callers asking for
    #: ``n_hangs``/``n_partitions`` must check this for under-injection.
    dropped: tuple[dict, ...] = ()

    def counts(self) -> dict[str, int]:
        """Injected-event totals by kind (recoveries included)."""
        out: dict[str, int] = {}
        for row in self.faults:
            out[row["kind"]] = out.get(row["kind"], 0) + 1
            if row["kind"] in _NODE_FAULTS:
                out["node_recover"] = out.get("node_recover", 0) + 1
        return out


def weave_chaos(
    base_events: Sequence[ServeEvent],
    *,
    seed: int,
    node_ids: Sequence[str],
    n_crashes: int = 1,
    n_hangs: int = 1,
    n_partitions: int = 1,
    n_assign_faults: int = 2,
    fault_count: int = 2,
    recover_after: int = 40,
) -> ChaosPlan:
    """Splice seeded node faults into ``base_events``.

    Every node fault is placed in the first ~70% of the stream and paired
    with a ``node_recover`` ``recover_after`` base events later (always
    before the final event), with per-node fault windows kept disjoint.
    ``assign_fault`` events arm ``fault_count`` transient placement
    failures each. At least one crash is required — a chaos run that
    cannot lose a node proves nothing — and failing to place it raises;
    any *other* fault that finds no disjoint per-node window after
    bounded attempts is recorded in :attr:`ChaosPlan.dropped` rather
    than vanishing silently.
    """
    base = list(base_events)
    if len(base) < 20:
        raise ValueError(f"need >= 20 base events, got {len(base)}")
    if not node_ids:
        raise ValueError("need at least one node")
    if n_crashes < 1:
        raise ValueError("a chaos plan needs at least one node crash")
    for event in base:
        if event.kind not in ("submit", "depart"):
            raise ValueError(
                f"base stream must be submit/depart only, got {event.kind!r}"
            )

    rng = make_rng(seed)
    n = len(base)
    lo, hi = max(1, n // 10), max(2, int(n * 0.7))
    # position -> base-event index the insertion lands *before*.
    insertions: list[tuple[int, int, ServeEvent]] = []
    faults: list[dict] = []
    busy: dict[str, list[tuple[int, int]]] = {nid: [] for nid in node_ids}
    order = 0

    def node_free(nid: str, start: int, stop: int) -> bool:
        return all(
            stop <= a or start >= b for a, b in busy[nid]
        )

    wanted = (
        [("node_crash", None)] * n_crashes
        + [("node_hang", None)] * n_hangs
        + [("node_partition", None)] * n_partitions
    )
    dropped: list[dict] = []
    for kind, _ in wanted:
        placed = False
        for _attempt in range(50):
            start = int(rng.integers(lo, hi))
            stop = min(start + recover_after, n - 1)
            if stop <= start:
                continue
            nid = str(node_ids[int(rng.integers(len(node_ids)))])
            if not node_free(nid, start, stop):
                continue
            busy[nid].append((start, stop))
            insertions.append(
                (start, order, ServeEvent(seq=-1, kind=kind, node_id=nid))
            )
            order += 1
            insertions.append(
                (
                    stop,
                    order,
                    ServeEvent(seq=-1, kind="node_recover", node_id=nid),
                )
            )
            order += 1
            faults.append(
                {"kind": kind, "node_id": nid, "at": start, "recover_at": stop}
            )
            placed = True
            break
        if not placed:
            if kind == "node_crash" and not any(
                f["kind"] == "node_crash" for f in faults
            ):
                raise ValueError(
                    "could not place the mandatory node crash; widen the "
                    "stream or shrink recover_after"
                )
            # Record the shortfall rather than dropping it silently —
            # a caller requesting n faults must be able to see it got
            # fewer (the smoke test and CLI surface this).
            dropped.append({"kind": kind})
    for _ in range(n_assign_faults):
        at = int(rng.integers(lo, hi))
        nid = str(node_ids[int(rng.integers(len(node_ids)))])
        insertions.append(
            (
                at,
                order,
                ServeEvent(
                    seq=-1, kind="assign_fault", node_id=nid, count=fault_count
                ),
            )
        )
        order += 1
        faults.append({"kind": "assign_fault", "node_id": nid, "at": at})

    insertions.sort(key=lambda row: (row[0], row[1]))
    woven: list[ServeEvent] = []
    cursor = 0
    for i, event in enumerate(base):
        while cursor < len(insertions) and insertions[cursor][0] <= i:
            inserted = insertions[cursor][2]
            woven.append(
                ServeEvent(
                    seq=len(woven),
                    kind=inserted.kind,
                    node_id=inserted.node_id,
                    count=inserted.count,
                )
            )
            cursor += 1
        woven.append(
            ServeEvent(
                seq=len(woven),
                kind=event.kind,
                job_id=event.job_id,
                job_kind=event.job_kind,
                app=event.app,
            )
        )
    # Positions were capped at n-1, so nothing trails the final event.
    assert cursor == len(insertions)
    kill_seq = woven[len(woven) // 2].seq
    return ChaosPlan(
        events=tuple(woven),
        kill_seq=kill_seq,
        faults=tuple(faults),
        dropped=tuple(dropped),
    )
