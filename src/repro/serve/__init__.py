"""``repro.serve`` — a fault-tolerant multi-node consolidation control plane.

The paper runs one DICER controller on one node inside a batch
experiment; this package runs *fleets*: an asyncio daemon supervising
many per-node controllers (DICER, or any zoo policy via
``policy_from_name``), each driving a :class:`~repro.rdt.simulated.
SimulatedRdt`-backed node, under an admission path that extends
:mod:`repro.core.admission` to place incoming HP/BE jobs onto nodes by
predicted SLO headroom.

Robustness is the architecture, not a feature (DESIGN.md §14):

* the placement state machine (:mod:`repro.serve.placement`) is
  *declarative* — after every event it reconciles the fleet to the
  canonical placement of the live job set, so node failures drain jobs
  to survivors, recoveries pull them home, and the terminal state is a
  pure function of the job history, byte-identical between a clean run
  and a chaos-ridden one;
* nodes are supervised by heartbeat + deadline (:mod:`repro.serve.node`)
  with fault injection at the node boundary (:class:`~repro.rdt.faulty.
  NodeFaultyRdt`: crash/hang/partition composing with the §8 counter
  faults);
* the daemon (:mod:`repro.serve.daemon`) checkpoints its state into a
  checksummed atomic snapshot (:mod:`repro.serve.snapshot`, the §9
  crash-safety idioms) and restarts from it — SIGTERM-kill a run, start
  again, and it resumes exactly where it stopped;
* placement actuation retries with bounded deterministic backoff, and a
  node that exhausts its retries is marked down and drained rather than
  wedging the plane — the plane keeps serving at reduced capacity.

:mod:`repro.serve.loadgen` replays thousands of seeded arrival/departure
events and :mod:`repro.serve.chaos` weaves node faults into them;
``make serve-smoke`` proves the determinism contract end to end.
"""

from repro.serve.api import ServeApi
from repro.serve.chaos import ChaosPlan, weave_chaos
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.events import ServeEvent, read_events, write_events
from repro.serve.loadgen import generate_events
from repro.serve.placement import (
    AdmissionCache,
    ControlPlane,
    Job,
    PlaneConfig,
)
from repro.serve.node import NodeRuntime, NodeSupervisor
from repro.serve.snapshot import load_snapshot, save_snapshot

__all__ = [
    "AdmissionCache",
    "ChaosPlan",
    "ControlPlane",
    "Job",
    "NodeRuntime",
    "NodeSupervisor",
    "PlaneConfig",
    "ServeApi",
    "ServeConfig",
    "ServeDaemon",
    "ServeEvent",
    "generate_events",
    "load_snapshot",
    "read_events",
    "save_snapshot",
    "weave_chaos",
    "write_events",
]
