"""The serve event model: one JSONL line per control-plane input.

Everything that changes control-plane state is an event — job arrivals
and departures from the load generator or the REST API, node faults and
recoveries from the chaos schedule or the live heartbeat supervisor.
Events are totally ordered by ``seq``; the plane applies them one at a
time, which is what makes a chaos run replayable and a restarted daemon
able to resume mid-stream (DESIGN.md §14).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = [
    "EVENT_KINDS",
    "ServeEvent",
    "read_events",
    "write_events",
]

#: Every event kind the control plane understands.
EVENT_KINDS = (
    "submit",          # a job arrives (job_id, job_kind, app)
    "depart",          # a job leaves (job_id); no-op if not live
    "node_crash",      # node down, controller state lost (node_id)
    "node_hang",       # node wedged: unhealthy until recover (node_id)
    "node_partition",  # node unreachable: unhealthy until recover (node_id)
    "node_recover",    # node healthy again (node_id)
    "assign_fault",    # arm `count` transient placement faults (node_id)
)


@dataclass(frozen=True)
class ServeEvent:
    """One ordered control-plane input."""

    seq: int
    kind: str
    job_id: str | None = None
    job_kind: str | None = None  #: ``"hp"`` or ``"be"`` (submit only).
    app: str | None = None       #: Catalog app name (submit only).
    node_id: str | None = None   #: Target node (node_* / assign_fault).
    count: int = 0               #: Armed fault count (assign_fault only).

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{', '.join(EVENT_KINDS)}"
            )

    def to_dict(self) -> dict:
        """JSON-safe form, omitting unset optional fields."""
        out = {k: v for k, v in asdict(self).items() if v not in (None, 0)}
        out["seq"] = self.seq  # seq 0 must survive the filter
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "ServeEvent":
        """Inverse of :meth:`to_dict` (tolerates extra keys)."""
        return cls(
            seq=int(raw["seq"]),
            kind=str(raw["kind"]),
            job_id=raw.get("job_id"),
            job_kind=raw.get("job_kind"),
            app=raw.get("app"),
            node_id=raw.get("node_id"),
            count=int(raw.get("count", 0)),
        )


def write_events(path: Path | str, events: list[ServeEvent]) -> None:
    """Write ``events`` as one JSONL file (the durable replay input)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")


def read_events(path: Path | str) -> list[ServeEvent]:
    """Read a JSONL event stream; raises ``ValueError`` on a bad line.

    The events file is the control plane's ground truth — unlike the
    snapshot (which can be quarantined and rebuilt by replay), a corrupt
    input stream is not survivable and fails loudly.
    """
    events = []
    for i, line in enumerate(Path(path).read_text().splitlines()):
        if not line.strip():
            continue
        try:
            events.append(ServeEvent.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ValueError(
                f"{path}: bad event on line {i + 1}: {exc}"
            ) from exc
    return events
