"""The serve daemon: event loop, supervision tree, snapshots, retry.

:class:`ServeDaemon` owns one :class:`~repro.serve.placement.
ControlPlane` and a :class:`~repro.serve.node.NodeRuntime` per node,
supervised by per-node :class:`~repro.serve.node.NodeSupervisor` tasks
(the supervision tree of DESIGN.md §14). Its loop is deliberately dumb:

    pop next event → route node faults to the runtime boundary →
    apply to the plane (which reconciles) → actuate changed nodes
    with bounded deterministic retry → snapshot every N events.

Crash safety is snapshot + replay: the daemon checkpoints the plane into
a checksummed atomic snapshot (:mod:`repro.serve.snapshot`), SIGTERM
triggers a final checkpoint, and a restarted daemon loads the snapshot
(or replays from scratch if it is missing/corrupt) and skips every event
with ``seq <= applied_seq`` — resuming exactly where it stopped, with a
terminal state identical to an uninterrupted run.

Actuation failures degrade gracefully: a transient fault (armed by the
chaos stream) is absorbed by ``max_retries`` deterministic backoff
attempts; exhaustion is counted and left for the next actuation pass
rather than wedging the loop, and a node the *plane* knows is down is
simply never actuated — its jobs have already drained to survivors.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import get_event_log, get_registry
from repro.rdt.faulty import RdtUnavailableError
from repro.serve.events import ServeEvent, read_events
from repro.serve.node import NodeRuntime, NodeSupervisor
from repro.serve.placement import ControlPlane, PlaneConfig
from repro.serve.snapshot import load_snapshot, save_snapshot

__all__ = ["ReplayInProgressError", "ServeConfig", "ServeDaemon"]

#: Event kind → boundary fault kind injected into the node runtime.
_FAULT_KINDS = {
    "node_crash": "crash",
    "node_hang": "hang",
    "node_partition": "partition",
}

#: Snapshot health state → boundary fault to re-arm on resume.
_HEALTH_FAULTS = {
    "crashed": "crash",
    "hung": "hang",
    "partitioned": "partition",
}


class ReplayInProgressError(RuntimeError):
    """An external event was refused because the stream is not drained.

    Raised by :meth:`ServeDaemon.apply_external` while :meth:`ServeDaemon.
    run` is still replaying the events file (or the file holds events
    beyond ``applied_seq``): admitting an external event then would steal
    the sequence number of a not-yet-applied stream event, dropping it
    and breaking the replay-identical guarantee. The API maps this to
    503 — the client retries once replay has drained.
    """


def _tail_seq(path: Path) -> int | None:
    """Seq of the last event in the durable file (``None`` if none)."""
    try:
        lines = path.read_text(encoding="utf-8").strip().splitlines()
    except FileNotFoundError:
        return None
    if not lines:
        return None
    return int(json.loads(lines[-1])["seq"])


@dataclass(frozen=True)
class ServeConfig:
    """Daemon wiring: paths, pacing, retry and supervision budgets."""

    plane: PlaneConfig
    #: Durable event stream (ground truth; replayed on start).
    events_path: Path
    #: Checkpoint target (checksummed atomic snapshot).
    snapshot_path: Path
    #: Checkpoint every N applied events (0 = only on exit).
    snapshot_every: int = 100
    #: Sleep between events — pacing hook for kill/restart tests.
    throttle_s: float = 0.0
    #: Evaluate dirty nodes every N applied events (0 = never).
    evaluate_every: int = 0
    eval_periods: int = 2
    #: Bounded deterministic retry for placement actuation.
    max_retries: int = 3
    retry_base_s: float = 0.0
    #: Heartbeat supervision cadence (per-node jitter applied on top).
    heartbeat_s: float = 0.02
    deadline_s: float = 0.25
    #: Run the heartbeat supervisors (off = pure deterministic replay).
    supervise: bool = False

    def __post_init__(self) -> None:
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.throttle_s < 0 or self.retry_base_s < 0:
            raise ValueError("pacing delays must be >= 0")


@dataclass
class _RetryStats:
    attempts: int = 0
    retries: int = 0
    failures: int = 0
    by_node: dict[str, int] = field(default_factory=dict)


class ServeDaemon:
    """Supervise a fleet of node runtimes through one control plane."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        state = load_snapshot(config.snapshot_path)
        if state is not None:
            self.plane = ControlPlane.from_snapshot(state)
            self.resumed = True
        else:
            self.plane = ControlPlane(config.plane)
            self.resumed = False
        self.runtimes: dict[str, NodeRuntime] = {
            nid: NodeRuntime(nid, self.plane.config)
            for nid in self.plane.config.node_ids
        }
        # A resumed daemon must re-arm the boundaries the snapshot says
        # are down — crashed, hung AND partitioned — or the supervision
        # picture would disagree with the plane's. Persistent injection
        # holds the fault until the stream's node_recover heals both (a
        # one-shot hang or self-healing partition would let heartbeats
        # see a healthy node the plane still reports down).
        for nid, entry in self.plane.nodes.items():
            fault = _HEALTH_FAULTS.get(entry.health)
            if fault is not None:
                self.runtimes[nid].inject(fault, persistent=True)
        self.supervisors: dict[str, NodeSupervisor] = {}
        self.retry_stats = _RetryStats()
        self.downs_reported: list[tuple[str, str]] = []
        self._stop = False
        self._snapshot_due = 0
        self._replaying = False
        self._external_lock = asyncio.Lock()

    # -- lifecycle ---------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the loop to checkpoint and exit after the current event."""
        self._stop = True

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_stop)
            except (NotImplementedError, RuntimeError):
                # Non-main thread / platform without signal support:
                # stop is still reachable via request_stop().
                break

    def _on_node_down(self, node_id: str, reason: str) -> None:
        """Supervisor verdict: ``node_id`` missed its heartbeat budget.

        In replay mode the event stream already carries the fault, so
        this only records the detection (the plane must stay a pure
        function of the stream); a live front-end can watch
        :attr:`downs_reported` and synthesize ``node_crash`` events.
        """
        self.downs_reported.append((node_id, reason))
        log = get_event_log()
        if log.enabled:
            log.emit("serve.supervisor.down", node=node_id, reason=reason)

    def _start_supervisors(self) -> list[asyncio.Task]:
        if not self.config.supervise:
            return []
        tasks = []
        for nid, runtime in self.runtimes.items():
            supervisor = NodeSupervisor(
                runtime,
                interval_s=self.config.heartbeat_s,
                deadline_s=self.config.deadline_s,
                on_down=self._on_node_down,
            )
            self.supervisors[nid] = supervisor
            tasks.append(asyncio.create_task(supervisor.run()))
        return tasks

    # -- actuation ---------------------------------------------------------

    async def _assign_with_retry(
        self, runtime: NodeRuntime, hp_app: str | None, be_apps: tuple
    ) -> bool:
        """Bounded deterministic retry with exponential backoff."""
        delay = self.config.retry_base_s
        for attempt in range(self.config.max_retries + 1):
            self.retry_stats.attempts += 1
            try:
                runtime.assign(hp_app, be_apps)
            except RdtUnavailableError:
                if attempt < self.config.max_retries:
                    self.retry_stats.retries += 1
                    self.plane.counters["placement_retries"] += 1
                    if delay > 0:
                        await asyncio.sleep(delay)
                        delay *= 2
                    continue
                self.retry_stats.failures += 1
                node = runtime.node_id
                self.retry_stats.by_node[node] = (
                    self.retry_stats.by_node.get(node, 0) + 1
                )
                self.plane.counters["placement_failures"] += 1
                get_registry().counter("serve.placement_failures").inc()
                log = get_event_log()
                if log.enabled:
                    log.emit("serve.placement_failure", node=node)
                return False
            else:
                return True
        return False  # pragma: no cover - loop always returns

    async def _actuate(self) -> None:
        """Push the plane's placement onto every healthy, stale node.

        A node the plane knows is down is skipped (its jobs already
        drained); a node that fails all retries stays stale and is
        retried on the next actuation pass — graceful degradation, not
        a wedge.
        """
        for nid in self.plane.healthy_nodes():
            runtime = self.runtimes[nid]
            hp, bes = self.plane.node_assignment(nid)
            desired = (
                hp.app if hp else None,
                tuple(b.app for b in bes),
            )
            if (runtime.hp_app, runtime.be_apps) != desired:
                await self._assign_with_retry(runtime, *desired)

    def _evaluate_dirty(self) -> None:
        for nid in self.plane.healthy_nodes():
            runtime = self.runtimes[nid]
            if runtime.dirty:
                try:
                    runtime.evaluate(periods=self.config.eval_periods)
                except RdtUnavailableError:
                    # The stream will mark / has marked the node down;
                    # evaluation is best-effort telemetry either way.
                    continue

    # -- the loop ----------------------------------------------------------

    def _snapshot(self) -> None:
        save_snapshot(self.config.snapshot_path, self.plane.snapshot_state())
        self._snapshot_due = 0

    async def apply_event(self, event: ServeEvent) -> dict:
        """Route, apply, actuate and maybe checkpoint one event."""
        outcome = self.plane.apply_event(event)  # validates the event
        kind = _FAULT_KINDS.get(event.kind)
        if kind is not None:
            # Persistent: the plane reports the node down until the
            # paired node_recover, so the boundary must stay down for
            # exactly that window too (a self-healing partition or a
            # one-shot hang would diverge from plane health mid-window).
            self.runtimes[event.node_id].inject(kind, persistent=True)
        elif event.kind == "node_recover":
            self.runtimes[event.node_id].restore()
        elif event.kind == "assign_fault":
            self.runtimes[event.node_id].arm_assign_faults(event.count)
        await self._actuate()
        if (
            self.config.evaluate_every
            and self.plane.counters["events_applied"]
            % self.config.evaluate_every
            == 0
        ):
            self._evaluate_dirty()
        self._snapshot_due += 1
        if (
            self.config.snapshot_every
            and self._snapshot_due >= self.config.snapshot_every
        ):
            self._snapshot()
        return outcome

    async def run(self) -> dict:
        """Replay the events file to its end (or until stopped).

        Returns :meth:`summary`. Always exits through a checkpoint, so
        a SIGTERM'd run can be resumed by constructing a new daemon on
        the same paths.
        """
        self._install_signal_handlers()
        supervisor_tasks = self._start_supervisors()
        # External events are refused until the stream has drained: an
        # external submit mid-replay would steal the next file event's
        # seq (that event would then be silently skipped) and append a
        # duplicate-seq line that replays in a different order.
        self._replaying = True
        t0 = time.monotonic()
        try:
            async with self._external_lock:
                events = read_events(self.config.events_path)
                for event in events:
                    if event.seq <= self.plane.applied_seq:
                        continue  # already applied before the restart
                    if self._stop:
                        break
                    await self.apply_event(event)
                    if self.config.throttle_s > 0:
                        await asyncio.sleep(self.config.throttle_s)
                else:
                    # Drained without an early stop: every file event is
                    # applied, so external seqs are collision-free again.
                    self._replaying = False
        finally:
            self.plane.elapsed_s += time.monotonic() - t0
            self._snapshot()
            for supervisor in self.supervisors.values():
                supervisor.stop()
            for task in supervisor_tasks:
                await task
        log = get_event_log()
        if log.enabled:
            log.emit(
                "serve.run_end",
                applied_seq=self.plane.applied_seq,
                stopped=self._stop,
                digest=self.plane.digest(),
            )
        return self.summary()

    async def apply_external(self, kind: str, **fields) -> dict:
        """Admit an event from outside the replay stream (the REST API).

        The event is assigned the next sequence number, **fully
        validated** against the plane, appended to the durable events
        file (write-ahead: a crash between append and apply replays it
        on restart), then applied normally. Validation precedes the
        append so a rejected input — unknown app, duplicate job id,
        unknown node — never reaches the log: a poisoned line would
        fail on every restart and crash-loop the daemon.

        Raises :class:`ReplayInProgressError` while :meth:`run` is still
        replaying (or the file holds events beyond ``applied_seq``) —
        admitting an event then would steal a stream event's seq.
        """
        if self._replaying:
            raise ReplayInProgressError(
                "event stream replay in progress; retry once drained"
            )
        async with self._external_lock:
            seq = self.plane.applied_seq + 1
            if kind == "submit" and not fields.get("job_id"):
                fields["job_id"] = f"api{seq:05d}"
            event = ServeEvent(seq=seq, kind=kind, **fields)
            self.plane.validate_event(event)  # refuse BEFORE the append
            path = Path(self.config.events_path)
            tail = _tail_seq(path)
            if tail is not None and seq <= tail:
                raise ReplayInProgressError(
                    f"events file holds seqs up to {tail} but only "
                    f"{self.plane.applied_seq} applied; refusing external "
                    "event until the stream is drained"
                )
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            return await self.apply_event(event)

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict:
        """Plane summary + daemon-side supervision and retry accounting."""
        out = self.plane.summary()
        out["resumed"] = self.resumed
        out["stopped_early"] = self._stop
        out["retry"] = {
            "attempts": self.retry_stats.attempts,
            "retries": self.retry_stats.retries,
            "failures": self.retry_stats.failures,
            "by_node": dict(self.retry_stats.by_node),
        }
        out["runtimes"] = {
            nid: {
                "assigns": runtime.assigns,
                "evaluations": runtime.evaluations,
                "armed_faults": runtime.armed_faults,
                "available": runtime.available,
                "last_metrics": runtime.last_metrics,
            }
            for nid, runtime in self.runtimes.items()
        }
        if self.supervisors:
            out["heartbeats"] = {
                nid: {
                    "beats": supervisor.beats,
                    "misses": supervisor.misses,
                }
                for nid, supervisor in self.supervisors.items()
            }
        return out
