"""Checksummed atomic control-plane snapshots.

The daemon checkpoints :meth:`ControlPlane.snapshot_state` with the same
crash-safety idioms the result store earned in DESIGN.md §9/§11: a
payload carrying its own SHA-256, written to a per-pid temp file,
fsynced, atomically renamed over the target, parent directory fsynced.
A reader therefore sees either the previous snapshot or the new one,
never a torn hybrid.

Unlike the result cache, a snapshot has a second source of truth — the
events file. A corrupt snapshot is quarantined (``<name>.corrupt.N``)
and :func:`load_snapshot` returns ``None``; the daemon then rebuilds by
replaying events from seq 0, which lands on the identical state because
the plane is a pure fold over its inputs. Corruption costs time, never
correctness.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path

from repro.obs import get_event_log, get_registry

__all__ = ["SNAPSHOT_VERSION", "load_snapshot", "save_snapshot"]

SNAPSHOT_VERSION = 1

_log = logging.getLogger(__name__)


def _state_digest(state: dict) -> str:
    canonical = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_snapshot(path: Path | str, state: dict) -> None:
    """Atomically persist ``state`` (a ``snapshot_state()`` dict)."""
    path = Path(path)
    payload = {
        "version": SNAPSHOT_VERSION,
        "sha256": _state_digest(state),
        "state": state,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, sort_keys=True))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    get_registry().counter("serve.snapshot.saves").inc()
    log = get_event_log()
    if log.enabled:
        log.emit(
            "serve.snapshot.save",
            path=str(path),
            applied_seq=state.get("applied_seq"),
        )


def _quarantine(path: Path, raw: bytes, reason: str) -> None:
    """Move a corrupt snapshot aside so replay can rebuild cleanly."""
    target = path.with_name(path.name + ".corrupt")
    n = 0
    while target.exists():
        n += 1
        target = path.with_name(f"{path.name}.corrupt.{n}")
    try:
        target.write_bytes(raw)
        path.unlink()
        moved = str(target)
    except OSError:  # pragma: no cover - read-only snapshot dir
        moved = None
    _log.warning(
        "snapshot %s is corrupt (%s); %s — rebuilding by event replay",
        path,
        reason,
        f"quarantined to {moved}" if moved else "could not quarantine",
    )
    get_registry().counter("serve.snapshot.corrupt").inc()
    log = get_event_log()
    if log.enabled:
        log.emit(
            "serve.snapshot.corrupt",
            path=str(path),
            reason=reason,
            quarantined=moved,
        )


def load_snapshot(path: Path | str) -> dict | None:
    """Load and verify a snapshot; ``None`` means "replay from scratch".

    ``None`` covers both the benign case (no snapshot yet) and the
    corrupt one (bad JSON, missing state, checksum mismatch — the
    artefact is quarantined first). Callers never need to distinguish:
    event replay reconstructs the exact same plane either way.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return None
    except OSError:  # pragma: no cover - I/O error reading snapshot
        _log.warning("snapshot %s unreadable; rebuilding by replay", path)
        return None
    try:
        payload = json.loads(raw.decode("utf-8", errors="replace"))
    except json.JSONDecodeError:
        _quarantine(path, raw, "invalid JSON")
        return None
    if not isinstance(payload, dict):
        _quarantine(path, raw, "not an object")
        return None
    state = payload.get("state")
    if not isinstance(state, dict):
        _quarantine(path, raw, "no state object")
        return None
    recorded = payload.get("sha256")
    actual = _state_digest(state)
    if recorded != actual:
        _quarantine(
            path, raw, f"checksum mismatch ({recorded} recorded, {actual})"
        )
        return None
    get_registry().counter("serve.snapshot.loads").inc()
    return state
