"""Synthetic address-trace generators.

Each generator yields byte addresses whose reuse behaviour matches one of
the catalog's archetypes, so the trace-driven cache simulator can *measure*
miss-ratio curves and validate the analytic forms used by the fast server
model:

* :func:`streaming_trace` — a sequential scan far larger than the cache:
  flat, high miss ratio at any allocation (cf. :class:`ConstantMRC`);
* :func:`working_set_trace` — uniform reuse over a fixed-size hot set:
  a sharp knee once the set fits (cf. :class:`KneeMRC`);
* :func:`zipf_trace` — Zipf-distributed reuse: smoothly decaying curve
  (cf. :class:`ExponentialMRC`);
* :func:`mixed_trace` — working set + scan blend (cf. :class:`BlendedMRC`).

All generators take a :class:`numpy.random.Generator` so traces are
reproducible; addresses are line-aligned.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.util.validation import check_positive_int

__all__ = [
    "streaming_trace",
    "working_set_trace",
    "zipf_trace",
    "mixed_trace",
]

LINE = 64


def streaming_trace(
    n_accesses: int,
    *,
    footprint_lines: int,
    base: int = 0,
) -> Iterator[int]:
    """Sequential scan over ``footprint_lines``, wrapping around.

    With a footprint well above the cache size, every access misses no
    matter how many ways are granted — the LRU worst case.
    """
    check_positive_int("n_accesses", n_accesses)
    check_positive_int("footprint_lines", footprint_lines)
    for i in range(n_accesses):
        yield base + (i % footprint_lines) * LINE


def working_set_trace(
    n_accesses: int,
    rng: np.random.Generator,
    *,
    ws_lines: int,
    base: int = 0,
) -> Iterator[int]:
    """Uniform random reuse over a hot set of ``ws_lines`` lines."""
    check_positive_int("n_accesses", n_accesses)
    check_positive_int("ws_lines", ws_lines)
    picks = rng.integers(0, ws_lines, size=n_accesses)
    for p in picks:
        yield base + int(p) * LINE


def zipf_trace(
    n_accesses: int,
    rng: np.random.Generator,
    *,
    universe_lines: int,
    exponent: float = 1.2,
    base: int = 0,
) -> Iterator[int]:
    """Zipf-distributed reuse over ``universe_lines`` distinct lines.

    Hot lines are revisited constantly, the long tail almost never — the
    shape behind smoothly decaying miss-ratio curves.
    """
    check_positive_int("n_accesses", n_accesses)
    check_positive_int("universe_lines", universe_lines)
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    ranks = rng.zipf(exponent, size=n_accesses)
    for r in ranks:
        yield base + (int(r - 1) % universe_lines) * LINE


def mixed_trace(
    n_accesses: int,
    rng: np.random.Generator,
    *,
    ws_lines: int,
    scan_lines: int,
    scan_fraction: float = 0.3,
    base: int = 0,
) -> Iterator[int]:
    """Hot working set interleaved with a polluting scan.

    ``scan_fraction`` of accesses walk a large streaming region; the rest
    reuse the hot set. Produces the knee-plus-gradient blend of real
    big-footprint applications.
    """
    check_positive_int("n_accesses", n_accesses)
    check_positive_int("ws_lines", ws_lines)
    check_positive_int("scan_lines", scan_lines)
    if not 0.0 <= scan_fraction <= 1.0:
        raise ValueError(f"scan_fraction must be in [0,1], got {scan_fraction}")
    scan_base = base + ws_lines * LINE
    scan_pos = 0
    is_scan = rng.random(size=n_accesses) < scan_fraction
    picks = rng.integers(0, ws_lines, size=n_accesses)
    for i in range(n_accesses):
        if is_scan[i]:
            yield scan_base + (scan_pos % scan_lines) * LINE
            scan_pos += 1
        else:
            yield base + int(picks[i]) * LINE
