"""Set-associative LLC simulator with CAT-style way masking.

This is the reproduction's ground-truth cache model: a classic
(sets × ways) LRU cache whose *insertion* ways can be restricted per class
of service (CLOS), exactly like Intel CAT. The analytic miss-ratio curves
in :mod:`repro.workloads.mrc` are validated against trace-driven
measurements on this simulator (see :mod:`repro.cachesim.mrc`).

CAT semantics implemented faithfully:

* a CLOS's mask restricts which ways its fills may *occupy*;
* lookups hit in **any** way (a line left behind after a mask change stays
  usable until evicted — the paper notes LLC contents survive allocation
  changes, Section 3.3);
* victims are chosen LRU **within the requester's mask**, so one CLOS can
  never evict lines cached in ways outside its mask.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_positive_int

__all__ = ["CacheGeometry", "CacheStats", "SetAssociativeCache"]


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of a simulated cache."""

    n_sets: int
    n_ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        check_positive_int("n_sets", self.n_sets)
        check_positive_int("n_ways", self.n_ways)
        check_positive_int("line_bytes", self.line_bytes)
        if self.n_sets & (self.n_sets - 1):
            raise ValueError(f"n_sets must be a power of two, got {self.n_sets}")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(
                f"line_bytes must be a power of two, got {self.line_bytes}"
            )

    @property
    def capacity_bytes(self) -> int:
        """Total cache capacity in bytes."""
        return self.n_sets * self.n_ways * self.line_bytes

    @classmethod
    def like_table1(cls, n_sets: int = 1024) -> "CacheGeometry":
        """A scaled-down 20-way cache mirroring the paper's LLC shape."""
        return cls(n_sets=n_sets, n_ways=20)


@dataclass
class CacheStats:
    """Per-CLOS access statistics."""

    accesses: int = 0
    misses: int = 0
    evictions_caused: int = 0

    @property
    def hits(self) -> int:
        """Accesses that hit (accesses - misses)."""
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        """misses / accesses; raises on zero accesses."""
        if self.accesses == 0:
            raise ValueError("no accesses recorded")
        return self.misses / self.accesses


class SetAssociativeCache:
    """Set-associative cache with per-CLOS way masks.

    Two replacement policies:

    * ``"lru"`` (default) — true LRU via access timestamps;
    * ``"plru"`` — bit-PLRU (MRU-bit approximation): each way carries a
      reference bit, set on touch; when every candidate way's bit is set
      the others are cleared; the victim is the first candidate with a
      clear bit. This is the practical approximation real LLCs ship
      (tree/bit PLRU) — and unlike tree-PLRU it composes naturally with
      CAT way masks and non-power-of-two associativity.
    """

    def __init__(self, geometry: CacheGeometry, policy: str = "lru") -> None:
        if policy not in ("lru", "plru"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self.policy = policy
        self.geometry = geometry
        n = geometry.n_sets * geometry.n_ways
        # Flat arrays indexed set*n_ways + way; tag -1 = invalid.
        self._tags: list[int] = [-1] * n
        self._owner: list[int] = [-1] * n
        self._stamp: list[int] = [0] * n
        self._mru: list[bool] = [False] * n
        self._clock = 0
        full_mask = (1 << geometry.n_ways) - 1
        self._masks: dict[int, int] = {0: full_mask}
        self._stats: dict[int, CacheStats] = {}
        self._set_shift = geometry.line_bytes.bit_length() - 1
        self._set_mask = geometry.n_sets - 1

    # -- configuration ----------------------------------------------------

    def set_clos_mask(self, clos: int, mask: int) -> None:
        """Restrict CLOS ``clos`` fills to the ways set in ``mask``."""
        if clos < 0:
            raise ValueError(f"clos must be >= 0, got {clos}")
        full = (1 << self.geometry.n_ways) - 1
        if mask <= 0 or mask & ~full:
            raise ValueError(
                f"mask {mask:#x} invalid for {self.geometry.n_ways} ways"
            )
        self._masks[clos] = mask

    def clos_mask(self, clos: int) -> int:
        """Current way mask of ``clos`` (full mask by default)."""
        return self._masks.get(clos, (1 << self.geometry.n_ways) - 1)

    def stats(self, clos: int) -> CacheStats:
        """Per-CLOS statistics record (created on first use)."""
        return self._stats.setdefault(clos, CacheStats())

    def reset_stats(self) -> None:
        """Zero all per-CLOS statistics (contents stay cached)."""
        self._stats.clear()

    # -- accesses -----------------------------------------------------------

    def access(self, address: int, clos: int = 0) -> bool:
        """Perform one load; returns True on hit.

        ``address`` is a byte address; the line/set mapping uses the
        standard modulo interleaving.
        """
        if address < 0:
            raise ValueError(f"address must be >= 0, got {address}")
        line = address >> self._set_shift
        set_idx = line & self._set_mask
        tag = line >> self.geometry.n_sets.bit_length() - 1

        stats = self.stats(clos)
        stats.accesses += 1
        self._clock += 1
        base = set_idx * self.geometry.n_ways

        # Lookup across ALL ways (hits ignore masks).
        for way in range(self.geometry.n_ways):
            idx = base + way
            if self._tags[idx] == tag:
                self._touch(idx, base)
                return True

        # Miss: fill the replacement-policy victim within the CLOS mask.
        stats.misses += 1
        mask = self.clos_mask(clos)
        victim = self._select_victim(base, mask)
        if self._tags[victim] != -1:
            stats.evictions_caused += 1
        self._tags[victim] = tag
        self._owner[victim] = clos
        self._touch(victim, base)
        return False

    def _touch(self, idx: int, base: int) -> None:
        """Update replacement state for a touched line."""
        self._stamp[idx] = self._clock
        if self.policy == "plru":
            self._mru[idx] = True
            # When every way in the set is MRU-marked, clear the others.
            if all(
                self._mru[base + w] for w in range(self.geometry.n_ways)
            ):
                for w in range(self.geometry.n_ways):
                    self._mru[base + w] = False
                self._mru[idx] = True

    def _select_victim(self, base: int, mask: int) -> int:
        """Pick the victim way index within ``mask`` for set at ``base``."""
        victim = -1
        victim_stamp = None
        for way in range(self.geometry.n_ways):
            if not mask >> way & 1:
                continue
            idx = base + way
            if self._tags[idx] == -1:
                return idx
            if self.policy == "plru":
                if not self._mru[idx]:
                    return idx
                continue
            if victim_stamp is None or self._stamp[idx] < victim_stamp:
                victim = idx
                victim_stamp = self._stamp[idx]
        if victim < 0:
            # PLRU: every candidate is MRU-marked (possible when the CLOS
            # mask is a subset of the set); fall back to the first
            # candidate, matching hardware's clear-and-restart behaviour.
            for way in range(self.geometry.n_ways):
                if mask >> way & 1:
                    self._mru[base + way] = False
            for way in range(self.geometry.n_ways):
                if mask >> way & 1:
                    return base + way
            raise RuntimeError(  # pragma: no cover - masks validated
                "empty CLOS mask slipped through validation"
            )
        return victim

    # -- introspection --------------------------------------------------------

    def occupancy_lines(self, clos: int) -> int:
        """Lines currently owned (filled) by ``clos`` — the CMT signal."""
        return sum(1 for o in self._owner if o == clos)

    def flush(self) -> None:
        """Invalidate everything (stats are kept)."""
        n = self.geometry.n_sets * self.geometry.n_ways
        self._tags = [-1] * n
        self._owner = [-1] * n
        self._stamp = [0] * n
        self._mru = [False] * n
