"""Trace-driven set-associative cache simulator with CAT-style way masks.

The reproduction's ground truth for cache behaviour: synthetic address
traces replayed against an LRU cache whose fills respect per-CLOS way
masks. Used to validate both the analytic miss-ratio curves of
:mod:`repro.workloads.mrc` and CAT's isolation guarantees.
"""

from repro.cachesim.cache import CacheGeometry, CacheStats, SetAssociativeCache
from repro.cachesim.mrc import measure_miss_ratio, measure_mrc
from repro.cachesim.traces import (
    mixed_trace,
    streaming_trace,
    working_set_trace,
    zipf_trace,
)

__all__ = [
    "CacheGeometry",
    "CacheStats",
    "SetAssociativeCache",
    "measure_miss_ratio",
    "measure_mrc",
    "mixed_trace",
    "streaming_trace",
    "working_set_trace",
    "zipf_trace",
]
