"""Miss-ratio-curve measurement on the trace-driven cache simulator.

:func:`measure_mrc` replays a trace against a way-masked cache once per
allocation size and tabulates the resulting miss ratios into a
:class:`~repro.workloads.mrc.TabulatedMRC` — the bridge from ground-truth
simulation back into the analytic server model. The tests use it to check
that each analytic curve family matches the trace behaviour it claims to
model.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.cachesim.cache import CacheGeometry, SetAssociativeCache
from repro.rdt.masks import ways_to_cbm
from repro.workloads.mrc import TabulatedMRC

__all__ = ["measure_miss_ratio", "measure_mrc"]


def measure_miss_ratio(
    trace: Iterable[int],
    geometry: CacheGeometry,
    ways: int,
    *,
    warmup: int = 0,
) -> float:
    """Miss ratio of ``trace`` when confined to ``ways`` ways.

    ``warmup`` accesses fill the cache before counting starts, removing the
    cold-start bias for short traces.
    """
    if not 1 <= ways <= geometry.n_ways:
        raise ValueError(f"ways must be in [1, {geometry.n_ways}], got {ways}")
    cache = SetAssociativeCache(geometry)
    cache.set_clos_mask(0, ways_to_cbm(ways))
    it = iter(trace)
    for _, address in zip(range(warmup), it):
        cache.access(address, clos=0)
    cache.reset_stats()
    counted = False
    for address in it:
        cache.access(address, clos=0)
        counted = True
    if not counted:
        raise ValueError("trace exhausted during warmup")
    return cache.stats(0).miss_ratio


def measure_mrc(
    trace_factory: Callable[[], Iterator[int]],
    geometry: CacheGeometry,
    ways_points: Sequence[int] | None = None,
    *,
    warmup: int = 0,
) -> TabulatedMRC:
    """Tabulate the miss-ratio curve of a reproducible trace.

    ``trace_factory`` must return a *fresh, identical* trace per call (pass
    a seeded generator factory, not a shared iterator).
    """
    if ways_points is None:
        ways_points = list(range(1, geometry.n_ways + 1))
    ratios = [
        measure_miss_ratio(trace_factory(), geometry, w, warmup=warmup)
        for w in ways_points
    ]
    return TabulatedMRC([float(w) for w in ways_points], ratios)
