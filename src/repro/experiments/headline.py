"""The paper's headline claims, evaluated on the reproduction.

Abstract / Section 4.2 quote four summary numbers:

1. DICER achieves an SLO of 80 % for more than 90 % of workloads;
2. DICER achieves an SLO of 90 % for 74 % of workloads;
3. DICER maintains full-server effective utilisation of ~0.6 on average;
4. ~60 % of the 3481 pairs are CT-Thwarted (Section 2.3.3).

:func:`evaluate_headlines` computes each on a campaign grid (claims 1-3)
and a classification run (claim 4), and reports paper-vs-measured — the
data behind EXPERIMENTS.md's summary table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.grid import GridData
from repro.metrics.slo import slo_achieved
from repro.util.stats import geomean
from repro.util.tables import format_table

__all__ = ["HeadlineClaim", "evaluate_headlines", "render_headlines"]


@dataclass(frozen=True)
class HeadlineClaim:
    """One paper claim with its measured counterpart."""
    description: str
    paper_value: float
    measured_value: float

    @property
    def delta(self) -> float:
        """measured - paper."""
        return self.measured_value - self.paper_value


def evaluate_headlines(
    grid: GridData, ctt_fraction: float | None = None
) -> list[HeadlineClaim]:
    """Evaluate the four headline claims on a full-width campaign grid."""
    n_cores = max(grid.cores)
    dicer_points = grid.select(policy="DICER", n_cores=n_cores)
    if not dicer_points:
        raise ValueError("grid has no DICER points at full width")

    def slo_share(slo: float) -> float:
        hits = sum(
            1 for p in dicer_points if slo_achieved(p.result.hp_norm_ipc, slo)
        )
        return hits / len(dicer_points)

    claims = [
        HeadlineClaim(
            "workloads meeting SLO 80% under DICER (full server)",
            paper_value=0.90,
            measured_value=slo_share(0.80),
        ),
        HeadlineClaim(
            "workloads meeting SLO 90% under DICER (full server)",
            paper_value=0.74,
            measured_value=slo_share(0.90),
        ),
        HeadlineClaim(
            "geomean effective utilisation under DICER (full server)",
            paper_value=0.60,
            measured_value=geomean(p.result.efu for p in dicer_points),
        ),
    ]
    if ctt_fraction is not None:
        claims.append(
            HeadlineClaim(
                "CT-Thwarted share of the pair population",
                paper_value=0.60,
                measured_value=ctt_fraction,
            )
        )
    return claims


def render_headlines(claims: list[HeadlineClaim]) -> str:
    """Paper-vs-measured table of the headline claims."""
    rows = [
        [c.description, c.paper_value, c.measured_value, c.delta]
        for c in claims
    ]
    return format_table(
        ["Claim", "Paper", "Measured", "Delta"],
        rows,
        title="Headline claims: paper vs reproduction",
    )
