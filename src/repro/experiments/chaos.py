"""Chaos injection for campaign workers (the executor's ``FaultyRdt``).

Worker processes fail in ways the clean simulator never exercises: a
worker segfaults/OOMs (the process dies and takes the pool down with
it), wedges forever (a hang the supervisor must time out), raises a
transient Python exception, or returns garbage that is not a
:class:`~repro.experiments.runner.PairResult` at all. :class:`ChaosConfig`
injects exactly those four failure modes into :func:`~repro.experiments.
supervise.SupervisedExecutor` workers, either on a deterministic
per-cell schedule or at a seeded random per-attempt rate — mirroring
:class:`~repro.rdt.faulty.FaultyRdt`'s schedule/rate/seed design.

Because pool workers are separate processes, the configuration crosses
the process boundary through one environment variable
(:data:`CHAOS_ENV_VAR`); :func:`chaos_env` builds the value and
:meth:`ChaosConfig.from_env` parses it. The decision function is a pure
function of ``(seed, cell index, attempt)``, so a chaos schedule is
bit-reproducible across runs, worker counts and pool rebuilds.

Scheduled injections fire on a cell's *first* attempt only (a crash the
retry then clears), unless marked persistent with a ``*`` suffix — a
persistent cell is a *poison cell* that fails every attempt and must be
quarantined. Random-rate injections re-roll on every attempt.
"""

from __future__ import annotations

import enum
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosInjected",
    "ChaosKind",
    "ChaosConfig",
    "GARBAGE_RESULT",
    "active_config",
    "chaos_env",
    "maybe_inject",
]

#: Environment variable carrying the chaos spec into worker processes.
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Exit status of an injected worker crash (mirrors a SIGKILL'd process).
_CRASH_EXIT_CODE = 137

#: The deliberately-wrong object a ``garbage`` injection returns in place
#: of a ``PairResult`` (the supervisor must detect and retry it).
GARBAGE_RESULT = "<chaos: garbage output>"


class ChaosInjected(RuntimeError):
    """The exception an injected ``raise`` fault throws inside a worker."""


class ChaosKind(enum.Enum):
    """The four injectable worker failure modes (DESIGN.md §9)."""

    #: Hard process death: ``os._exit`` — breaks the whole pool.
    CRASH = "crash"
    #: Wedge: sleep far past any plausible cell time (needs a timeout).
    HANG = "hang"
    #: Transient Python exception propagated through the future.
    RAISE = "raise"
    #: Structurally-wrong return value (not a ``PairResult``).
    GARBAGE = "garbage"


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded, deterministic worker-fault injection plan.

    Parameters
    ----------
    schedule:
        Maps 1-based cell indices (position in the submitted batch) to a
        :class:`ChaosKind`. Scheduled faults fire on attempt 1 only,
        unless the index is also in ``persistent``.
    persistent:
        Cell indices whose scheduled fault fires on *every* attempt
        (poison cells).
    rate:
        Probability of injecting a fault into each unscheduled attempt.
    kinds:
        Fault population for random injection (default: crash / raise /
        garbage — ``hang`` only ever fires when scheduled, because a
        random hang without a configured timeout would wedge a campaign).
    seed:
        Root seed for random injection; the per-attempt decision is a
        pure function of ``(seed, cell index, attempt)``.
    hang_s:
        Sleep duration of an injected hang.
    """

    schedule: Mapping[int, ChaosKind] = field(default_factory=dict)
    persistent: frozenset[int] = frozenset()
    rate: float = 0.0
    kinds: tuple[ChaosKind, ...] = (
        ChaosKind.CRASH,
        ChaosKind.RAISE,
        ChaosKind.GARBAGE,
    )
    seed: int = 0
    hang_s: float = 300.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.rate > 0.0 and not self.kinds:
            raise ValueError("rate > 0 with an empty fault population")
        if self.hang_s <= 0.0:
            raise ValueError(f"hang_s must be > 0, got {self.hang_s}")

    def decide(self, index: int, attempt: int) -> ChaosKind | None:
        """The fault (if any) for attempt ``attempt`` of 1-based cell
        ``index`` — pure, so identical across processes and rebuilds."""
        kind = self.schedule.get(index)
        if kind is not None:
            if attempt == 1 or index in self.persistent:
                return kind
            return None
        if self.rate > 0.0:
            rng = np.random.default_rng((self.seed, index, attempt))
            if float(rng.random()) < self.rate:
                return self.kinds[int(rng.integers(len(self.kinds)))]
        return None

    # -- env round trip ------------------------------------------------------

    def to_env(self) -> str:
        """Serialise to the :data:`CHAOS_ENV_VAR` wire format."""
        parts = [f"seed={self.seed}", f"rate={self.rate!r}",
                 f"hang_s={self.hang_s!r}"]
        if self.kinds:
            parts.append("kinds=" + ",".join(k.value for k in self.kinds))
        if self.schedule:
            entries = []
            for index in sorted(self.schedule):
                star = "*" if index in self.persistent else ""
                entries.append(f"{index}:{self.schedule[index].value}{star}")
            parts.append("schedule=" + ",".join(entries))
        return ";".join(parts)

    @classmethod
    def from_env(cls, value: str) -> "ChaosConfig":
        """Parse the ``key=value;...`` spec built by :meth:`to_env`.

        Example: ``seed=7;rate=0.1;kinds=crash,raise;schedule=3:crash,5:hang*``
        (``*`` marks a persistent / poison entry).
        """
        schedule: dict[int, ChaosKind] = {}
        persistent: set[int] = set()
        kwargs: dict = {}
        for part in value.split(";"):
            part = part.strip()
            if not part:
                continue
            key, _, spec = part.partition("=")
            key = key.strip()
            spec = spec.strip()
            if key == "seed":
                kwargs["seed"] = int(spec)
            elif key == "rate":
                kwargs["rate"] = float(spec)
            elif key == "hang_s":
                kwargs["hang_s"] = float(spec)
            elif key == "kinds":
                kwargs["kinds"] = tuple(
                    ChaosKind(k.strip()) for k in spec.split(",") if k.strip()
                )
            elif key == "schedule":
                for entry in spec.split(","):
                    entry = entry.strip()
                    if not entry:
                        continue
                    index_s, _, kind_s = entry.partition(":")
                    if kind_s.endswith("*"):
                        kind_s = kind_s[:-1]
                        persistent.add(int(index_s))
                    schedule[int(index_s)] = ChaosKind(kind_s)
            else:
                raise ValueError(f"unknown chaos spec key {key!r}")
        return cls(
            schedule=schedule, persistent=frozenset(persistent), **kwargs
        )


def chaos_env(
    *,
    schedule: Mapping[int, ChaosKind | str] | None = None,
    persistent: Iterable[int] = (),
    rate: float = 0.0,
    kinds: Iterable[ChaosKind | str] | None = None,
    seed: int = 0,
    hang_s: float = 300.0,
) -> str:
    """Build a :data:`CHAOS_ENV_VAR` value (test/CI convenience)."""
    config = ChaosConfig(
        schedule={int(k): ChaosKind(v) for k, v in (schedule or {}).items()},
        persistent=frozenset(int(i) for i in persistent),
        rate=rate,
        kinds=(
            tuple(ChaosKind(k) for k in kinds)
            if kinds is not None
            else ChaosConfig.kinds
        ),
        seed=seed,
        hang_s=hang_s,
    )
    return config.to_env()


#: Per-process parse cache: (raw env value, parsed config).
_ACTIVE: tuple[str, ChaosConfig] | None = None


def active_config() -> ChaosConfig | None:
    """The process's chaos config, or ``None`` when chaos is off.

    Reads :data:`CHAOS_ENV_VAR` and caches the parse keyed on the raw
    value, so workers pay the parse once but tests that monkeypatch the
    environment always see the current spec.
    """
    global _ACTIVE
    value = os.environ.get(CHAOS_ENV_VAR)
    if not value:
        _ACTIVE = None
        return None
    if _ACTIVE is not None and _ACTIVE[0] == value:
        return _ACTIVE[1]
    config = ChaosConfig.from_env(value)
    _ACTIVE = (value, config)
    return config


def maybe_inject(index: int, attempt: int):
    """Fire the configured fault for ``(cell index, attempt)``, if any.

    Called by the worker immediately before executing a cell. ``crash``
    hard-exits the process, ``hang`` sleeps, ``raise`` throws
    :class:`ChaosInjected`; ``garbage`` returns :data:`GARBAGE_RESULT`,
    which the caller must return *instead of* the real result. Returns
    ``None`` when the attempt should run clean.
    """
    config = active_config()
    if config is None:
        return None
    kind = config.decide(index, attempt)
    if kind is None:
        return None
    if kind is ChaosKind.CRASH:
        os._exit(_CRASH_EXIT_CODE)
    if kind is ChaosKind.HANG:
        time.sleep(config.hang_s)
        return None
    if kind is ChaosKind.RAISE:
        raise ChaosInjected(
            f"injected failure (cell {index}, attempt {attempt})"
        )
    return GARBAGE_RESULT
