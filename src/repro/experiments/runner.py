"""Experiment runner: one (workload mix, policy) execution with metrics.

Implements the paper's methodology (Section 4.1): HP and BEs start
together, pinned one per core; finished applications restart until every
application has completed at least once; HP QoS is judged on IPC normalised
to isolated execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dicer import DecisionRecord
from repro.core.policies import Policy
from repro.metrics.efu import efu
from repro.rdt.simulated import SimulatedRdt
from repro.sim.kernels import check_kernel_precision, use_kernel
from repro.sim.partition import PartitionSpec
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.sim.server import Server
from repro.sim.solo import solo_profile
from repro.workloads.mix import MultiHpMix, WorkloadMix

__all__ = [
    "PairResult",
    "run_pair",
    "CustomResult",
    "run_custom",
    "MultiResult",
    "run_multi",
]


def _wire_prefetch(policy: Policy, rdt: SimulatedRdt) -> None:
    """Point a DICER-style controller's prefetch hook at the simulator.

    Controllers that expose ``prefetch_hook`` (see
    :class:`~repro.core.dicer.DicerController`) get their sampling grids
    batch-solved by :meth:`SimulatedRdt.prefetch_allocations`. The hook is
    a pure execution-speed hint; policies without one are untouched.
    """
    controller = getattr(policy, "controller", None)
    if controller is not None and hasattr(controller, "prefetch_hook"):
        controller.prefetch_hook = rdt.prefetch_allocations


@dataclass(frozen=True)
class PairResult:
    """Metrics of one consolidated execution."""

    hp_name: str
    be_name: str
    n_be: int
    policy: str
    hp_norm_ipc: float
    be_norm_ipc: float
    hp_slowdown: float
    efu: float
    duration_s: float
    hp_completions: int
    #: DICER decision trace (empty for static policies).
    trace: tuple[DecisionRecord, ...] = ()

    @property
    def label(self) -> str:
        """The paper's "hp be" row label."""
        return f"{self.hp_name} {self.be_name}"


def run_pair(
    mix: WorkloadMix,
    policy: Policy,
    platform: PlatformConfig = TABLE1_PLATFORM,
    *,
    max_time_s: float = 4000.0,
    record_timeline: bool = False,
    precision: str = "exact",
    kernel: str = "auto",
) -> PairResult:
    """Execute ``mix`` under ``policy`` and compute the paper's metrics.

    ``precision`` selects the steady-state solver mode for every solve in
    the run — event loop, prefetches, and solo baselines alike ("exact" =
    bitwise-reproducible scalar parity, "fast" = tolerance-contracted
    vectorised kernel; DESIGN.md §10). ``kernel`` picks the fast-precision
    implementation (``auto``/``fast``/``compiled``; DESIGN.md §12) for
    the duration of the run; it must not contradict ``precision``.
    """
    check_kernel_precision(kernel, precision)
    with use_kernel(kernel):
        return _run_pair_impl(
            mix, policy, platform,
            max_time_s=max_time_s,
            record_timeline=record_timeline,
            precision=precision,
        )


def _run_pair_impl(
    mix: WorkloadMix,
    policy: Policy,
    platform: PlatformConfig,
    *,
    max_time_s: float,
    record_timeline: bool,
    precision: str,
) -> PairResult:
    apps = mix.apps()
    n_cores = len(apps)
    policy = policy.fresh()

    allocation = policy.setup(platform.llc_ways)
    partition = (
        allocation.to_partition(n_cores)
        if allocation is not None
        else PartitionSpec.unmanaged(n_cores, platform.llc_ways)
    )
    server = Server(
        platform,
        apps,
        partition,
        record_timeline=record_timeline,
        precision=precision,
    )

    trace: tuple[DecisionRecord, ...] = ()
    if policy.dynamic:
        rdt = SimulatedRdt(server)
        _wire_prefetch(policy, rdt)
        # Batch-solve the phase product of the policy's *initial* partition
        # (a dynamic controller dwells there between decisions); later
        # partitions are prefetched through the controller hook.
        server.prefetch_phase_product()
        while not rdt.finished and server.time < max_time_s:
            sample = rdt.sample(policy.period_s)
            new_allocation = policy.update(sample)
            if new_allocation is not None:
                rdt.apply(new_allocation)
            throttle = getattr(policy, "be_throttle", None)
            if throttle is not None:
                rdt.apply_be_throttle(throttle)
            prefetch = getattr(policy, "be_prefetch", None)
            if prefetch is not None:
                rdt.apply_be_prefetch(prefetch)
        controller = getattr(policy, "controller", None)
        if controller is not None:
            trace = tuple(controller.trace)
    else:
        # Static partition: batch-solve the phase cross product up front
        # (identical results — the solves the event loop would do one at a
        # time all become memo hits).
        server.prefetch_phase_product()
        server.run_until_all_complete(max_time_s=max_time_s)

    solo_hp = solo_profile(mix.hp, platform, precision=precision)
    solo_be = solo_profile(mix.be, platform, precision=precision)
    duration = server.time
    freq = platform.freq_hz

    hp = server.apps[0]
    hp_norm = hp.total_instructions / (freq * duration) / solo_hp.avg_ipc
    be_norms = [
        a.total_instructions / (freq * duration) / solo_be.avg_ipc
        for a in server.apps[1:]
    ]
    hp_slowdown = (
        sum(hp.run_times) / len(hp.run_times) / solo_hp.time_s
        if hp.run_times
        else float("inf")
    )

    return PairResult(
        hp_name=mix.hp.name,
        be_name=mix.be.name,
        n_be=mix.n_be,
        policy=policy.name,
        hp_norm_ipc=hp_norm,
        be_norm_ipc=sum(be_norms) / len(be_norms),
        hp_slowdown=hp_slowdown,
        efu=efu([hp_norm] + be_norms),
        duration_s=duration,
        hp_completions=hp.completions,
        trace=trace,
    )


@dataclass(frozen=True)
class CustomResult:
    """Metrics of a heterogeneous consolidation (one HP + mixed BEs)."""

    label: str
    policy: str
    hp_norm_ipc: float
    #: Per-BE-instance normalised IPCs, in core order.
    be_norm_ipcs: tuple[float, ...]
    efu: float
    duration_s: float
    trace: tuple[DecisionRecord, ...] = ()


def run_custom(
    mix,
    policy: Policy,
    platform: PlatformConfig = TABLE1_PLATFORM,
    *,
    max_time_s: float = 4000.0,
    precision: str = "exact",
    kernel: str = "auto",
) -> CustomResult:
    """Execute a :class:`~repro.workloads.mix.HeterogeneousMix`.

    Identical methodology to :func:`run_pair` but with per-core BE models;
    each BE is normalised against its *own* solo profile. ``kernel``
    behaves as in :func:`run_pair`.
    """
    check_kernel_precision(kernel, precision)
    with use_kernel(kernel):
        return _run_custom_impl(
            mix, policy, platform, max_time_s=max_time_s, precision=precision
        )


def _run_custom_impl(
    mix,
    policy: Policy,
    platform: PlatformConfig,
    *,
    max_time_s: float,
    precision: str,
) -> CustomResult:
    apps = mix.apps()
    n_cores = len(apps)
    policy = policy.fresh()

    allocation = policy.setup(platform.llc_ways)
    partition = (
        allocation.to_partition(n_cores)
        if allocation is not None
        else PartitionSpec.unmanaged(n_cores, platform.llc_ways)
    )
    server = Server(platform, apps, partition, precision=precision)

    trace: tuple[DecisionRecord, ...] = ()
    if policy.dynamic:
        rdt = SimulatedRdt(server)
        _wire_prefetch(policy, rdt)
        server.prefetch_phase_product()
        while not rdt.finished and server.time < max_time_s:
            sample = rdt.sample(policy.period_s)
            new_allocation = policy.update(sample)
            if new_allocation is not None:
                rdt.apply(new_allocation)
            throttle = getattr(policy, "be_throttle", None)
            if throttle is not None:
                rdt.apply_be_throttle(throttle)
            prefetch = getattr(policy, "be_prefetch", None)
            if prefetch is not None:
                rdt.apply_be_prefetch(prefetch)
        controller = getattr(policy, "controller", None)
        if controller is not None:
            trace = tuple(controller.trace)
    else:
        server.prefetch_phase_product()
        server.run_until_all_complete(max_time_s=max_time_s)

    duration = server.time
    freq = platform.freq_hz
    norms = []
    for running, model in zip(server.apps, apps):
        solo = solo_profile(model, platform, precision=precision)
        norms.append(
            running.total_instructions / (freq * duration) / solo.avg_ipc
        )

    return CustomResult(
        label=mix.label,
        policy=policy.name,
        hp_norm_ipc=norms[0],
        be_norm_ipcs=tuple(norms[1:]),
        efu=efu(norms),
        duration_s=duration,
        trace=trace,
    )


@dataclass(frozen=True)
class MultiResult:
    """Metrics of a multi-HP consolidation (M co-equal classes)."""

    label: str
    policy: str
    #: Per-app normalised IPCs, in core order (HPs first, then BEs).
    norm_ipcs: tuple[float, ...]
    #: Number of high-priority apps (the first ``n_hp`` entries).
    n_hp: int
    #: Minimum normalised IPC over the HP apps — the fairness headline
    #: (LFOC optimises exactly this: no co-equal app left behind).
    min_hp_norm_ipc: float
    efu: float
    duration_s: float
    trace: tuple = ()

    @property
    def hp_norm_ipcs(self) -> tuple[float, ...]:
        """The HP apps' normalised IPCs."""
        return self.norm_ipcs[: self.n_hp]


def run_multi(
    mix: MultiHpMix,
    policy: Policy,
    platform: PlatformConfig = TABLE1_PLATFORM,
    *,
    max_time_s: float = 4000.0,
    precision: str = "exact",
    kernel: str = "auto",
) -> MultiResult:
    """Execute a :class:`~repro.workloads.mix.MultiHpMix`.

    Same methodology as :func:`run_pair` but every app — HP and BE alike —
    is normalised against its *own* solo profile, and the headline metric
    is the worst HP slowdown (fairness across co-equal classes) rather
    than core 0's QoS. M-class policies (LFOC) read the per-core arrays
    of each sample; HP/BE policies see core 0 as "the" HP and treat the
    rest as best-effort, which is exactly how they would behave if
    deployed on this mix unmodified.
    """
    check_kernel_precision(kernel, precision)
    with use_kernel(kernel):
        return _run_multi_impl(
            mix, policy, platform, max_time_s=max_time_s, precision=precision
        )


def _run_multi_impl(
    mix: MultiHpMix,
    policy: Policy,
    platform: PlatformConfig,
    *,
    max_time_s: float,
    precision: str,
) -> MultiResult:
    apps = mix.apps()
    n_cores = len(apps)
    policy = policy.fresh()

    allocation = policy.setup(platform.llc_ways)
    partition = (
        allocation.to_partition(n_cores)
        if allocation is not None
        else PartitionSpec.unmanaged(n_cores, platform.llc_ways)
    )
    server = Server(platform, apps, partition, precision=precision)

    trace: tuple = ()
    if policy.dynamic:
        rdt = SimulatedRdt(server)
        _wire_prefetch(policy, rdt)
        server.prefetch_phase_product()
        while not rdt.finished and server.time < max_time_s:
            sample = rdt.sample(policy.period_s)
            new_allocation = policy.update(sample)
            if new_allocation is not None:
                rdt.apply(new_allocation)
            throttle = getattr(policy, "be_throttle", None)
            if throttle is not None:
                rdt.apply_be_throttle(throttle)
            prefetch = getattr(policy, "be_prefetch", None)
            if prefetch is not None:
                rdt.apply_be_prefetch(prefetch)
        controller = getattr(policy, "controller", None)
        if controller is not None:
            trace = tuple(controller.trace)
    else:
        server.prefetch_phase_product()
        server.run_until_all_complete(max_time_s=max_time_s)

    duration = server.time
    freq = platform.freq_hz
    norms = []
    for running, model in zip(server.apps, apps):
        solo = solo_profile(model, platform, precision=precision)
        norms.append(
            float(
                running.total_instructions / (freq * duration) / solo.avg_ipc
            )
        )

    return MultiResult(
        label=mix.label,
        policy=policy.name,
        norm_ipcs=tuple(norms),
        n_hp=mix.n_hp,
        min_hp_norm_ipc=min(norms[: mix.n_hp]),
        efu=efu(norms),
        duration_s=duration,
        trace=trace,
    )
