"""Operator-facing recommendation: which policy for *this* consolidation?

The paper's evaluation machinery answers the research question; operators
ask a smaller one — "I have this HP, these BEs and this SLO: what should I
run?" :func:`recommend` executes the candidate policies on the requested
mix and ranks them exactly the way the paper would: SUCI first (SLA
violations are disqualifying), effective utilisation as the tiebreak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies import (
    CacheTakeoverPolicy,
    DicerPolicy,
    Policy,
    UnmanagedPolicy,
)
from repro.experiments.runner import PairResult, run_pair
from repro.metrics.slo import slo_achieved
from repro.metrics.suci import suci
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.util.tables import format_table
from repro.workloads.mix import make_mix

__all__ = ["PolicyVerdict", "Recommendation", "recommend", "render_recommendation"]


@dataclass(frozen=True)
class PolicyVerdict:
    """One candidate policy's outcome on the requested mix."""

    policy: str
    result: PairResult
    slo_met: bool
    suci: float


@dataclass(frozen=True)
class Recommendation:
    """Ranked verdicts; ``best`` is what the operator should deploy."""

    hp_name: str
    be_name: str
    n_be: int
    slo: float
    verdicts: tuple[PolicyVerdict, ...]

    @property
    def best(self) -> PolicyVerdict:
        """The top-ranked verdict."""
        return self.verdicts[0]


def recommend(
    hp_name: str,
    be_name: str,
    *,
    slo: float = 0.9,
    n_be: int = 9,
    lam: float = 1.0,
    platform: PlatformConfig = TABLE1_PLATFORM,
    policies: list[Policy] | None = None,
) -> Recommendation:
    """Run the candidates and rank by (SUCI, EFU) descending."""
    if policies is None:
        policies = [UnmanagedPolicy(), CacheTakeoverPolicy(), DicerPolicy()]
    verdicts = []
    for policy in policies:
        result = run_pair(make_mix(hp_name, be_name, n_be=n_be), policy, platform)
        verdicts.append(
            PolicyVerdict(
                policy=result.policy,
                result=result,
                slo_met=slo_achieved(result.hp_norm_ipc, slo),
                suci=suci(result.hp_norm_ipc, result.efu, slo, lam),
            )
        )
    verdicts.sort(key=lambda v: (v.suci, v.result.efu), reverse=True)
    return Recommendation(
        hp_name=hp_name,
        be_name=be_name,
        n_be=n_be,
        slo=slo,
        verdicts=tuple(verdicts),
    )


def render_recommendation(rec: Recommendation) -> str:
    """Ranked table plus a deploy/shed-load verdict line."""
    rows = [
        [
            v.policy,
            v.result.hp_norm_ipc,
            v.result.be_norm_ipc,
            v.result.efu,
            v.slo_met,
            v.suci,
        ]
        for v in rec.verdicts
    ]
    table = format_table(
        ["Policy", "HP norm IPC", "BE norm IPC", "EFU", "SLO met", "SUCI"],
        rows,
        title=(
            f"Recommendation: {rec.hp_name} + {rec.n_be}x{rec.be_name} "
            f"at SLO {rec.slo:.0%}"
        ),
    )
    best = rec.best
    if best.slo_met:
        verdict = (
            f"deploy {best.policy}: SLO holds with EFU {best.result.efu:.2f}"
        )
    else:
        verdict = (
            f"no candidate meets the SLO; {best.policy} comes closest "
            f"(HP at {best.result.hp_norm_ipc:.0%}) — shed BEs or relax "
            "the SLO (see repro.core.find_max_bes)"
        )
    return f"{table}\nVerdict: {verdict}"
