"""Figure 4 — effective utilisation vs HP slowdown scatter (UM and CT).

Each of the 120 sampled workloads is one point per policy: CT protects HP
(points bunch at low slowdown) at the price of low EFU; UM reaches high EFU
but scatters far right. The scatter motivates Key Observation 3: a scheme
is needed with UM's utilisation and CT's protection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.grid import GridData
from repro.util.stats import geomean
from repro.util.tables import format_table

__all__ = ["Fig4Data", "extract_fig4", "render_fig4"]


@dataclass(frozen=True)
class Fig4Data:
    """(slowdown, EFU) scatter points per policy at full server width."""

    #: policy -> list of (workload label, HP slowdown, EFU).
    points: dict[str, list[tuple[str, float, float]]]


def extract_fig4(grid: GridData, *, n_cores: int = 10) -> Fig4Data:
    """Project the scatter out of the shared campaign grid."""
    points: dict[str, list[tuple[str, float, float]]] = {}
    for policy in ("UM", "CT"):
        for p in grid.select(policy=policy, n_cores=n_cores):
            points.setdefault(policy, []).append(
                (p.result.label, p.result.hp_slowdown, p.result.efu)
            )
    if not points:
        raise ValueError(f"grid holds no UM/CT points at {n_cores} cores")
    return Fig4Data(points=points)


def render_fig4(data: Fig4Data, *, max_rows: int = 20) -> str:
    """Summary statistics plus the first scatter rows per policy."""
    summary_rows = []
    for policy, pts in data.points.items():
        slowdowns = [s for _, s, _ in pts]
        efus = [e for _, _, e in pts]
        summary_rows.append(
            [
                policy,
                len(pts),
                geomean(slowdowns),
                max(slowdowns),
                geomean(efus),
                min(efus),
                max(efus),
            ]
        )
    summary = format_table(
        [
            "Policy",
            "Workloads",
            "Geomean slowdown",
            "Max slowdown",
            "Geomean EFU",
            "Min EFU",
            "Max EFU",
        ],
        summary_rows,
        title="Figure 4: EFU vs HP slowdown (summary)",
    )
    detail_rows = []
    for policy, pts in data.points.items():
        for label, slowdown, efu_value in pts[:max_rows]:
            detail_rows.append([policy, label, slowdown, efu_value])
    detail = format_table(
        ["Policy", "Workload", "HP slowdown", "EFU"],
        detail_rows,
        title=f"Scatter points (first {max_rows} per policy)",
    )
    return f"{summary}\n\n{detail}"
