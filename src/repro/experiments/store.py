"""Campaign result store.

The paper's figures reuse the same underlying executions: Figures 4-8 all
draw on the 120-workload sample under UM/CT/DICER across core counts, and
Figure 1 plus the CT-F/CT-T classification share the full 3481-pair UM/CT
runs. :class:`ResultStore` memoises :class:`~repro.experiments.runner.
PairResult` objects per (hp, be, n_be, policy) in memory, with optional JSON
persistence so a long campaign survives process restarts.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.core.policies import Policy
from repro.experiments.runner import PairResult, run_pair
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.workloads.mix import make_mix

__all__ = ["ResultStore"]

#: Fields persisted to JSON (the decision trace is dropped — it is bulky and
#: only examples/tests inspect it).
_PERSISTED_FIELDS = (
    "hp_name",
    "be_name",
    "n_be",
    "policy",
    "hp_norm_ipc",
    "be_norm_ipc",
    "hp_slowdown",
    "efu",
    "duration_s",
    "hp_completions",
)


class ResultStore:
    """Memoising executor for (workload, policy, size) experiments."""

    def __init__(
        self,
        platform: PlatformConfig = TABLE1_PLATFORM,
        cache_path: Path | str | None = None,
    ) -> None:
        self.platform = platform
        self._results: dict[tuple[str, str, int, str], PairResult] = {}
        self._cache_path = Path(cache_path) if cache_path else None
        if self._cache_path and self._cache_path.exists():
            self._load()

    # -- execution ---------------------------------------------------------

    def get(
        self,
        hp_name: str,
        be_name: str,
        policy: Policy,
        n_be: int = 9,
        **run_kwargs,
    ) -> PairResult:
        """Fetch (or run and memoise) one experiment."""
        key = (hp_name, be_name, n_be, policy.name)
        result = self._results.get(key)
        if result is None:
            result = run_pair(
                make_mix(hp_name, be_name, n_be=n_be),
                policy,
                self.platform,
                **run_kwargs,
            )
            self._results[key] = result
        return result

    def __len__(self) -> int:
        return len(self._results)

    # -- persistence ---------------------------------------------------------

    def save(self) -> None:
        """Write all results to the JSON cache (no-op without a path)."""
        if not self._cache_path:
            return
        payload = [
            {k: v for k, v in asdict(r).items() if k in _PERSISTED_FIELDS}
            for r in self._results.values()
        ]
        self._cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._cache_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self._cache_path)

    def _load(self) -> None:
        assert self._cache_path is not None
        try:
            payload = json.loads(self._cache_path.read_text())
        except (OSError, json.JSONDecodeError):
            return  # corrupt caches are simply ignored (results recompute)
        for row in payload:
            try:
                result = PairResult(**row)
            except TypeError:
                continue  # schema drift: recompute
            key = (result.hp_name, result.be_name, result.n_be, result.policy)
            self._results[key] = result
