"""Campaign result store.

The paper's figures reuse the same underlying executions: Figures 4-8 all
draw on the 120-workload sample under UM/CT/DICER across core counts, and
Figure 1 plus the CT-F/CT-T classification share the full 3481-pair UM/CT
runs. :class:`ResultStore` memoises :class:`~repro.experiments.runner.
PairResult` objects per (hp, be, n_be, policy) in memory, with optional JSON
persistence so a long campaign survives process restarts.

Bulk requests (:meth:`ResultStore.get_many` / :meth:`ResultStore.prefetch`)
partition the requested cells into cached vs. pending and fan the pending
ones out over a :class:`~repro.experiments.supervise.SupervisedExecutor`.
Worker results merge back into the parent cache as they arrive, and — when
a ``cache_path`` is configured — are checkpointed to disk every
``checkpoint_every`` results, so an interrupted paper-scale campaign
resumes mid-grid instead of restarting.

Persistence is crash-safe (DESIGN.md §9): the cache is written to a
temporary file, fsynced, atomically renamed over the target, and the
parent directory fsynced; the on-disk payload carries a row count and a
SHA-256 checksum so a torn or bit-rotted file is *detected*, quarantined
to ``<path>.corrupt-<digest>``, and salvaged row-by-row instead of being
trusted or silently dropped. During a bulk request, SIGINT/SIGTERM flush
a checkpoint before the process dies, and a mid-campaign exception
flushes one before propagating — interrupted grids always resume from
the last completed cell.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import Iterable

from repro.core.policies import Policy
from repro.experiments.parallel import Cell
from repro.experiments.supervise import (
    FailedCell,
    SupervisedExecutor,
    SuperviseConfig,
)
from repro.obs import get_event_log, get_registry
from repro.experiments.runner import PairResult, run_pair
from repro.sim.contention import _check_precision
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.workloads.mix import make_mix

__all__ = ["ResultStore"]

_log = logging.getLogger(__name__)

#: Fields persisted to JSON (the decision trace is dropped — it is bulky and
#: only examples/tests inspect it).
_PERSISTED_FIELDS = (
    "hp_name",
    "be_name",
    "n_be",
    "policy",
    "hp_norm_ipc",
    "be_norm_ipc",
    "hp_slowdown",
    "efu",
    "duration_s",
    "hp_completions",
)

#: On-disk format version of the integrity-checked payload.
_CACHE_VERSION = 2


def _rows_digest(rows: list[dict]) -> str:
    """Canonical SHA-256 of the row list (stable across JSON round trips)."""
    canonical = json.dumps(rows, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _salvage_rows(text: str) -> list[dict]:
    """Best-effort row recovery from corrupt/truncated JSON.

    Scans forward from the first ``[`` decoding one object at a time, so
    every row that made it to disk intact before a crash truncated the
    file is recovered. Works on both the v2 wrapper (``"rows": [...``)
    and the legacy bare-list layout.
    """
    decoder = json.JSONDecoder()
    rows: list[dict] = []
    i = text.find("[")
    if i < 0:
        return rows
    i += 1
    n = len(text)
    while i < n:
        while i < n and text[i] in ", \t\r\n":
            i += 1
        if i >= n or text[i] != "{":
            break
        try:
            obj, i = decoder.raw_decode(text, i)
        except ValueError:
            break
        if isinstance(obj, dict):
            rows.append(obj)
    return rows


class ResultStore:
    """Memoising executor for (workload, policy, size) experiments.

    Parameters
    ----------
    platform:
        Platform every execution runs on.
    cache_path:
        Optional JSON file for persistence across processes.
    n_workers:
        Worker processes for bulk requests: ``1`` (default) keeps the exact
        serial execution path, ``0``/``None`` auto-detects from the CPU
        count, ``N > 1`` fans pending cells out over N processes. Serial
        and parallel execution produce bit-identical results.
    checkpoint_every:
        With a ``cache_path``, how many freshly computed results may
        accumulate before the cache is rewritten mid-campaign. Each
        checkpoint rewrites the whole store, so mid-campaign checkpoints
        are additionally rate-limited to one per
        ``min_checkpoint_interval_s`` seconds; campaigns fast enough to
        finish inside that window just save once at the end.
    supervise:
        A :class:`~repro.experiments.supervise.SuperviseConfig` giving
        bulk requests retry / per-cell timeout / quarantine semantics.
        ``None`` (default) is strict: no retries, the first failure
        aborts with a :class:`~repro.experiments.supervise.CampaignError`
        wrapping the original exception (a checkpoint is still flushed
        first). With ``on_failure="skip"``, quarantined cells
        return ``None`` placeholders from :meth:`get_many` and accumulate
        in :attr:`failures`.
    min_checkpoint_interval_s:
        Override of the mid-campaign checkpoint rate limit (mostly for
        tests; campaigns keep the default).
    precision:
        Solver precision every execution in this store runs under
        ("exact" = bitwise-reproducible, "fast" = tolerance-contracted
        vectorised kernel; DESIGN.md §10). A store is single-mode: the
        mode is stamped into the persisted cache, a cache written under
        the other mode refuses to load, and per-request ``precision``
        overrides that disagree with the store are rejected — fast and
        exact results never merge into one save.
    """

    #: Minimum seconds between mid-campaign checkpoint rewrites.
    _MIN_CHECKPOINT_INTERVAL_S = 5.0

    def __init__(
        self,
        platform: PlatformConfig = TABLE1_PLATFORM,
        cache_path: Path | str | None = None,
        *,
        n_workers: int | None = 1,
        checkpoint_every: int = 256,
        supervise: SuperviseConfig | None = None,
        min_checkpoint_interval_s: float | None = None,
        precision: str = "exact",
    ) -> None:
        self.platform = platform
        self.precision = _check_precision(precision)
        self._supervise = supervise if supervise is not None else SuperviseConfig()
        self._executor = SupervisedExecutor(n_workers, config=self._supervise)
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._checkpoint_every = checkpoint_every
        self._min_checkpoint_interval_s = (
            self._MIN_CHECKPOINT_INTERVAL_S
            if min_checkpoint_interval_s is None
            else min_checkpoint_interval_s
        )
        self._results: dict[tuple[str, str, int, str], PairResult] = {}
        self._cache_path = Path(cache_path) if cache_path else None
        self._n_loaded = 0
        self._n_dropped = 0
        self._n_salvaged = 0
        self._n_corrupt_files = 0
        self._n_computed = 0
        self._n_served = 0
        self._pending_checkpoint = 0
        self._last_checkpoint = float("-inf")
        #: Quarantined cells from bulk requests (``on_failure="skip"``).
        self.failures: list[FailedCell] = []
        if self._cache_path and self._cache_path.exists():
            self._load()

    @property
    def n_workers(self) -> int:
        """Worker process count used for bulk requests."""
        return self._executor.n_workers

    @property
    def supervise_config(self) -> SuperviseConfig:
        """The retry/timeout/failure policy bulk requests run under."""
        return self._supervise

    @staticmethod
    def _key(cell: Cell) -> tuple[str, str, int, str]:
        hp_name, be_name, n_be, policy = cell
        return (hp_name, be_name, n_be, policy.name)

    def _run_kwargs(self, run_kwargs: dict) -> dict:
        """Stamp the store's precision into per-request run kwargs.

        An explicit ``precision`` that matches the store is redundant but
        allowed; one that disagrees would mix solver modes inside a single
        cache file and is refused.
        """
        requested = run_kwargs.get("precision")
        if requested is not None and requested != self.precision:
            raise ValueError(
                f"store runs precision={self.precision!r}; refusing "
                f"per-request precision={requested!r} (mixed-mode results "
                "must not merge into one cache)"
            )
        return {**run_kwargs, "precision": self.precision}

    # -- execution ---------------------------------------------------------

    def get(
        self,
        hp_name: str,
        be_name: str,
        policy: Policy,
        n_be: int = 9,
        **run_kwargs,
    ) -> PairResult:
        """Fetch (or run and memoise) one experiment."""
        run_kwargs = self._run_kwargs(run_kwargs)
        key = (hp_name, be_name, n_be, policy.name)
        registry = get_registry()
        result = self._results.get(key)
        if result is None:
            if registry.enabled:
                with registry.histogram("store.cell_seconds").time():
                    result = run_pair(
                        make_mix(hp_name, be_name, n_be=n_be),
                        policy,
                        self.platform,
                        **run_kwargs,
                    )
            else:
                result = run_pair(
                    make_mix(hp_name, be_name, n_be=n_be),
                    policy,
                    self.platform,
                    **run_kwargs,
                )
            self._results[key] = result
            self._n_computed += 1
            registry.counter("store.computed").inc()
        else:
            self._n_served += 1
            registry.counter("store.served").inc()
        return result

    def get_many(
        self,
        cells: Iterable[Cell],
        **run_kwargs,
    ) -> list[PairResult | None]:
        """Fetch a batch of cells, fanning pending ones out over workers.

        Cells are ``(hp_name, be_name, n_be, policy)`` tuples. The request
        is partitioned into cached vs. pending; pending cells (deduplicated,
        in first-appearance order) run on the store's supervised executor,
        merge back into the cache as they complete, and are checkpointed to
        ``cache_path`` along the way. Returns results aligned
        index-for-index with ``cells``.

        Failure semantics follow the store's ``supervise`` config: by
        default the first failure aborts (after a checkpoint flush) with
        a :class:`~repro.experiments.supervise.CampaignError` whose
        ``cause`` is the original exception; with ``on_failure="skip"`` a
        quarantined
        cell yields ``None`` at its positions and a
        :class:`~repro.experiments.supervise.FailedCell` in
        :attr:`failures`. A SIGINT/SIGTERM during the bulk request
        flushes a checkpoint before the process dies.
        """
        cells = list(cells)
        run_kwargs = self._run_kwargs(run_kwargs)
        keys = [self._key(cell) for cell in cells]
        pending: dict[tuple[str, str, int, str], Cell] = {}
        for key, cell in zip(keys, cells):
            if key not in self._results and key not in pending:
                pending[key] = cell
        self._n_served += len(cells) - len(pending)
        registry = get_registry()
        registry.counter("store.served").inc(len(cells) - len(pending))

        if pending:
            pending_keys = list(pending)

            def merge(index: int, cell: Cell, result: PairResult) -> None:
                self._results[pending_keys[index]] = result
                self._n_computed += 1
                registry.counter("store.computed").inc()
                self._pending_checkpoint += 1
                if (
                    self._cache_path
                    and self._pending_checkpoint >= self._checkpoint_every
                    and time.monotonic() - self._last_checkpoint
                    >= self._min_checkpoint_interval_s
                ):
                    self.save()

            try:
                with self._checkpoint_on_signal():
                    outcome = self._executor.run(
                        list(pending.values()),
                        self.platform,
                        run_kwargs=run_kwargs,
                        on_result=merge,
                    )
            finally:
                # A checkpoint survives whatever interrupted the campaign:
                # quarantine-abort, a worker exception, KeyboardInterrupt.
                if self._cache_path and self._pending_checkpoint:
                    self.save()
            if outcome.failures:
                self.failures.extend(outcome.failures)
                registry.counter("store.failed_cells").inc(
                    len(outcome.failures)
                )

        return [self._results.get(key) for key in keys]

    def prefetch(
        self,
        cells: Iterable[Cell],
        **run_kwargs,
    ) -> dict[str, int]:
        """Ensure every cell is computed; report the cached/run partition.

        Returns ``{"requested": ..., "cached": ..., "computed": ...,
        "failed": ...}`` for the batch (duplicates within the batch count
        as cached).
        """
        cells = list(cells)
        computed_before = self._n_computed
        failed_before = len(self.failures)
        self.get_many(cells, **run_kwargs)
        computed = self._n_computed - computed_before
        failed = len(self.failures) - failed_before
        return {
            "requested": len(cells),
            "cached": len(cells) - computed - failed,
            "computed": computed,
            "failed": failed,
        }

    def __len__(self) -> int:
        return len(self._results)

    def failure_manifest(self) -> list[dict]:
        """Quarantined cells as plain dicts (for reports / JSON)."""
        return [
            {
                "hp_name": f.hp_name,
                "be_name": f.be_name,
                "n_be": f.n_be,
                "policy": f.policy,
                "precision": f.precision,
                "attempts": len(f.attempts),
                "outcome": f.last_error.outcome if f.last_error else "?",
                "error": (
                    f"{f.last_error.error_type}: {f.last_error.message}"
                    if f.last_error and f.last_error.error_type
                    else ""
                ),
            }
            for f in self.failures
        ]

    def stats(self) -> dict[str, int]:
        """Bookkeeping counters for campaign reports.

        ``cached``: results currently held; ``loaded``: rows restored from
        the JSON cache; ``recomputed``: executions this store ran;
        ``served``: requests answered from memory; ``dropped``: persisted
        *rows* ignored on load (schema drift); ``corrupt_files``: cache
        files that failed integrity/parse checks (quarantined, counted
        separately from row drops); ``salvaged``: rows recovered out of a
        corrupt file; ``failed_cells``: cells quarantined by the
        supervisor.
        """
        return {
            "cached": len(self._results),
            "loaded": self._n_loaded,
            "recomputed": self._n_computed,
            "served": self._n_served,
            "dropped": self._n_dropped,
            "corrupt_files": self._n_corrupt_files,
            "salvaged": self._n_salvaged,
            "failed_cells": len(self.failures),
        }

    # -- persistence ---------------------------------------------------------

    @contextmanager
    def _checkpoint_on_signal(self):
        """Flush a checkpoint when SIGINT/SIGTERM lands mid-campaign.

        Installs chaining handlers for the duration of a bulk request:
        the checkpoint is written first, then the previous handler (or
        default action) runs, so ``kill -TERM`` of a mid-grid campaign
        leaves a valid, checksum-verified cache behind. Signal handlers
        only exist on the main thread; elsewhere this is a no-op.
        """
        if (
            not self._cache_path
            or threading.current_thread() is not threading.main_thread()
        ):
            yield
            return

        previous: dict[int, object] = {}

        def flush_and_chain(signum, frame):
            try:
                self.save()
                log = get_event_log()
                if log.enabled:
                    log.emit(
                        "store.signal_flush",
                        signal=signal.Signals(signum).name,
                        results=len(self._results),
                    )
            finally:
                prev = previous.get(signum, signal.SIG_DFL)
                signal.signal(signum, prev)
                if callable(prev):
                    prev(signum, frame)
                else:
                    # SIG_DFL (or SIG_IGN, where re-raising is harmless):
                    # re-deliver so the default action runs.
                    os.kill(os.getpid(), signum)

        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous[signum] = signal.signal(signum, flush_and_chain)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            yield
            return
        try:
            yield
        finally:
            for signum, prev in previous.items():
                try:
                    signal.signal(signum, prev)
                except (ValueError, OSError):  # pragma: no cover
                    pass

    def save(self) -> None:
        """Atomically write all results to the JSON cache (no-op without a
        path).

        The write is torn-write-proof: payload → temp file → ``fsync`` →
        ``rename`` over the target → ``fsync`` of the parent directory.
        The payload embeds a row count and SHA-256 checksum that
        :meth:`_load` verifies.
        """
        if not self._cache_path:
            return
        t0 = time.perf_counter()
        rows = [
            {k: v for k, v in asdict(r).items() if k in _PERSISTED_FIELDS}
            for r in self._results.values()
        ]
        payload = {
            "version": _CACHE_VERSION,
            "precision": self.precision,
            "n_rows": len(rows),
            "sha256": _rows_digest(rows),
            "rows": rows,
        }
        self._cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._cache_path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._cache_path)
        try:
            dir_fd = os.open(self._cache_path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass
        self._pending_checkpoint = 0
        self._last_checkpoint = time.monotonic()
        registry = get_registry()
        if registry.enabled:
            elapsed = time.perf_counter() - t0
            registry.counter("store.checkpoints").inc()
            registry.histogram("store.checkpoint_seconds").observe(elapsed)
            log = get_event_log()
            if log.enabled:
                log.emit(
                    "store.checkpoint",
                    path=str(self._cache_path),
                    results=len(self._results),
                    seconds=round(elapsed, 6),
                )

    def _quarantine_corrupt(self, raw: str, reason: str) -> list[dict]:
        """Set a corrupt cache aside and salvage what rows survive.

        The file moves to ``<path>.corrupt-<digest>`` (content-addressed,
        so repeated crashes keep distinct evidence) and every complete
        row found in the damaged text is returned for reloading.
        """
        assert self._cache_path is not None
        self._n_corrupt_files += 1
        registry = get_registry()
        registry.counter("store.corrupt_files").inc()
        digest = hashlib.sha256(raw.encode("utf-8")).hexdigest()[:12]
        quarantine = self._cache_path.with_name(
            self._cache_path.name + f".corrupt-{digest}"
        )
        try:
            os.replace(self._cache_path, quarantine)
            moved = str(quarantine)
        except OSError:  # pragma: no cover - unlinked/permission races
            moved = "<unmovable>"
        salvaged = _salvage_rows(raw)
        _log.warning(
            "result cache %s is unreadable (%s); quarantined to %s, "
            "salvaged %d row(s)",
            self._cache_path,
            reason,
            moved,
            len(salvaged),
        )
        log = get_event_log()
        if log.enabled:
            log.emit(
                "store.cache_corrupt",
                path=str(self._cache_path),
                quarantined=moved,
                reason=reason,
                salvaged=len(salvaged),
            )
        return salvaged

    def _load(self) -> None:
        assert self._cache_path is not None
        try:
            raw = self._cache_path.read_text()
        except OSError:
            self._n_corrupt_files += 1
            _log.warning(
                "result cache %s is unreadable (I/O error); all results "
                "will be recomputed",
                self._cache_path,
            )
            return
        salvaged = False
        # Caches that predate the precision stamp were all written by the
        # bitwise-exact solver.
        file_precision = "exact"
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError:
            rows = self._quarantine_corrupt(raw, "invalid JSON")
            salvaged = True
        else:
            if isinstance(payload, list):
                # Legacy v1 layout: a bare row list, no integrity data.
                rows = payload
            elif isinstance(payload, dict):
                file_precision = payload.get("precision", "exact")
                rows = payload.get("rows")
                if not isinstance(rows, list):
                    rows = self._quarantine_corrupt(raw, "no row array")
                    salvaged = True
                elif payload.get("n_rows") != len(rows):
                    rows = self._quarantine_corrupt(
                        raw,
                        f"row count mismatch ({payload.get('n_rows')} "
                        f"recorded, {len(rows)} present)",
                    )
                    salvaged = True
                elif payload.get("sha256") != _rows_digest(rows):
                    rows = self._quarantine_corrupt(raw, "checksum mismatch")
                    salvaged = True
            else:
                rows = self._quarantine_corrupt(raw, "unexpected payload type")
                salvaged = True
        if not salvaged and file_precision != self.precision:
            raise ValueError(
                f"result cache {self._cache_path} was written under "
                f"precision={file_precision!r} but this store runs "
                f"precision={self.precision!r}; refusing to merge "
                "mixed-mode results (use a separate cache path per mode)"
            )
        if salvaged and self.precision != file_precision:
            # A corrupt cache carries no trustworthy precision stamp;
            # salvaged rows are assumed exact and must not leak into a
            # fast-mode store.
            self._n_dropped += len(rows)
            rows = []
        for row in rows:
            try:
                result = PairResult(**row)
            except TypeError:
                self._n_dropped += 1
                continue  # schema drift: recompute
            key = (result.hp_name, result.be_name, result.n_be, result.policy)
            self._results[key] = result
            self._n_loaded += 1
            if salvaged:
                self._n_salvaged += 1
        if self._n_dropped:
            _log.warning(
                "result cache %s: ignored %d of %d rows (schema drift); "
                "they will be recomputed",
                self._cache_path,
                self._n_dropped,
                len(rows),
            )
