"""Campaign result store.

The paper's figures reuse the same underlying executions: Figures 4-8 all
draw on the 120-workload sample under UM/CT/DICER across core counts, and
Figure 1 plus the CT-F/CT-T classification share the full 3481-pair UM/CT
runs. :class:`ResultStore` memoises :class:`~repro.experiments.runner.
PairResult` objects per (hp, be, n_be, policy) in memory, with optional JSON
persistence so a long campaign survives process restarts.

Bulk requests (:meth:`ResultStore.get_many` / :meth:`ResultStore.prefetch`)
partition the requested cells into cached vs. pending and fan the pending
ones out over a :class:`~repro.experiments.parallel.ParallelExecutor`.
Worker results merge back into the parent cache as they arrive, and — when
a ``cache_path`` is configured — are checkpointed to disk every
``checkpoint_every`` results, so an interrupted paper-scale campaign
resumes mid-grid instead of restarting.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import asdict
from pathlib import Path
from typing import Iterable

from repro.core.policies import Policy
from repro.experiments.parallel import Cell, ParallelExecutor
from repro.obs import get_event_log, get_registry
from repro.experiments.runner import PairResult, run_pair
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.workloads.mix import make_mix

__all__ = ["ResultStore"]

_log = logging.getLogger(__name__)

#: Fields persisted to JSON (the decision trace is dropped — it is bulky and
#: only examples/tests inspect it).
_PERSISTED_FIELDS = (
    "hp_name",
    "be_name",
    "n_be",
    "policy",
    "hp_norm_ipc",
    "be_norm_ipc",
    "hp_slowdown",
    "efu",
    "duration_s",
    "hp_completions",
)


class ResultStore:
    """Memoising executor for (workload, policy, size) experiments.

    Parameters
    ----------
    platform:
        Platform every execution runs on.
    cache_path:
        Optional JSON file for persistence across processes.
    n_workers:
        Worker processes for bulk requests: ``1`` (default) keeps the exact
        serial execution path, ``0``/``None`` auto-detects from the CPU
        count, ``N > 1`` fans pending cells out over N processes. Serial
        and parallel execution produce bit-identical results.
    checkpoint_every:
        With a ``cache_path``, how many freshly computed results may
        accumulate before the cache is rewritten mid-campaign. Each
        checkpoint rewrites the whole store, so mid-campaign checkpoints
        are additionally rate-limited to one per
        ``_MIN_CHECKPOINT_INTERVAL_S`` seconds; campaigns fast enough to
        finish inside that window just save once at the end.
    """

    #: Minimum seconds between mid-campaign checkpoint rewrites.
    _MIN_CHECKPOINT_INTERVAL_S = 5.0

    def __init__(
        self,
        platform: PlatformConfig = TABLE1_PLATFORM,
        cache_path: Path | str | None = None,
        *,
        n_workers: int | None = 1,
        checkpoint_every: int = 256,
    ) -> None:
        self.platform = platform
        self._executor = ParallelExecutor(n_workers)
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._checkpoint_every = checkpoint_every
        self._results: dict[tuple[str, str, int, str], PairResult] = {}
        self._cache_path = Path(cache_path) if cache_path else None
        self._n_loaded = 0
        self._n_dropped = 0
        self._n_computed = 0
        self._n_served = 0
        self._pending_checkpoint = 0
        self._last_checkpoint = float("-inf")
        if self._cache_path and self._cache_path.exists():
            self._load()

    @property
    def n_workers(self) -> int:
        """Worker process count used for bulk requests."""
        return self._executor.n_workers

    @staticmethod
    def _key(cell: Cell) -> tuple[str, str, int, str]:
        hp_name, be_name, n_be, policy = cell
        return (hp_name, be_name, n_be, policy.name)

    # -- execution ---------------------------------------------------------

    def get(
        self,
        hp_name: str,
        be_name: str,
        policy: Policy,
        n_be: int = 9,
        **run_kwargs,
    ) -> PairResult:
        """Fetch (or run and memoise) one experiment."""
        key = (hp_name, be_name, n_be, policy.name)
        registry = get_registry()
        result = self._results.get(key)
        if result is None:
            if registry.enabled:
                with registry.histogram("store.cell_seconds").time():
                    result = run_pair(
                        make_mix(hp_name, be_name, n_be=n_be),
                        policy,
                        self.platform,
                        **run_kwargs,
                    )
            else:
                result = run_pair(
                    make_mix(hp_name, be_name, n_be=n_be),
                    policy,
                    self.platform,
                    **run_kwargs,
                )
            self._results[key] = result
            self._n_computed += 1
            registry.counter("store.computed").inc()
        else:
            self._n_served += 1
            registry.counter("store.served").inc()
        return result

    def get_many(
        self,
        cells: Iterable[Cell],
        **run_kwargs,
    ) -> list[PairResult]:
        """Fetch a batch of cells, fanning pending ones out over workers.

        Cells are ``(hp_name, be_name, n_be, policy)`` tuples. The request
        is partitioned into cached vs. pending; pending cells (deduplicated,
        in first-appearance order) run on the store's executor, merge back
        into the cache as they complete, and are checkpointed to
        ``cache_path`` along the way. Returns results aligned
        index-for-index with ``cells``.
        """
        cells = list(cells)
        keys = [self._key(cell) for cell in cells]
        pending: dict[tuple[str, str, int, str], Cell] = {}
        for key, cell in zip(keys, cells):
            if key not in self._results and key not in pending:
                pending[key] = cell
        self._n_served += len(cells) - len(pending)
        registry = get_registry()
        registry.counter("store.served").inc(len(cells) - len(pending))

        if pending:
            pending_keys = list(pending)

            def merge(index: int, cell: Cell, result: PairResult) -> None:
                self._results[pending_keys[index]] = result
                self._n_computed += 1
                registry.counter("store.computed").inc()
                self._pending_checkpoint += 1
                if (
                    self._cache_path
                    and self._pending_checkpoint >= self._checkpoint_every
                    and time.monotonic() - self._last_checkpoint
                    >= self._MIN_CHECKPOINT_INTERVAL_S
                ):
                    self.save()

            self._executor.run(
                list(pending.values()),
                self.platform,
                run_kwargs=run_kwargs or None,
                on_result=merge,
            )
            if self._cache_path and self._pending_checkpoint:
                self.save()

        return [self._results[key] for key in keys]

    def prefetch(
        self,
        cells: Iterable[Cell],
        **run_kwargs,
    ) -> dict[str, int]:
        """Ensure every cell is computed; report the cached/run partition.

        Returns ``{"requested": ..., "cached": ..., "computed": ...}`` for
        the batch (duplicates within the batch count as cached).
        """
        cells = list(cells)
        computed_before = self._n_computed
        self.get_many(cells, **run_kwargs)
        computed = self._n_computed - computed_before
        return {
            "requested": len(cells),
            "cached": len(cells) - computed,
            "computed": computed,
        }

    def __len__(self) -> int:
        return len(self._results)

    def stats(self) -> dict[str, int]:
        """Bookkeeping counters for campaign reports.

        ``cached``: results currently held; ``loaded``: rows restored from
        the JSON cache; ``recomputed``: executions this store ran;
        ``served``: requests answered from memory; ``dropped``: persisted
        rows ignored on load (schema drift / corruption).
        """
        return {
            "cached": len(self._results),
            "loaded": self._n_loaded,
            "recomputed": self._n_computed,
            "served": self._n_served,
            "dropped": self._n_dropped,
        }

    # -- persistence ---------------------------------------------------------

    def save(self) -> None:
        """Write all results to the JSON cache (no-op without a path)."""
        if not self._cache_path:
            return
        t0 = time.perf_counter()
        payload = [
            {k: v for k, v in asdict(r).items() if k in _PERSISTED_FIELDS}
            for r in self._results.values()
        ]
        self._cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._cache_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self._cache_path)
        self._pending_checkpoint = 0
        self._last_checkpoint = time.monotonic()
        registry = get_registry()
        if registry.enabled:
            elapsed = time.perf_counter() - t0
            registry.counter("store.checkpoints").inc()
            registry.histogram("store.checkpoint_seconds").observe(elapsed)
            log = get_event_log()
            if log.enabled:
                log.emit(
                    "store.checkpoint",
                    path=str(self._cache_path),
                    results=len(self._results),
                    seconds=round(elapsed, 6),
                )

    def _load(self) -> None:
        assert self._cache_path is not None
        try:
            payload = json.loads(self._cache_path.read_text())
        except (OSError, json.JSONDecodeError):
            _log.warning(
                "result cache %s is unreadable; all results will be "
                "recomputed",
                self._cache_path,
            )
            self._n_dropped += 1
            return
        for row in payload:
            try:
                result = PairResult(**row)
            except TypeError:
                self._n_dropped += 1
                continue  # schema drift: recompute
            key = (result.hp_name, result.be_name, result.n_be, result.policy)
            self._results[key] = result
            self._n_loaded += 1
        if self._n_dropped:
            _log.warning(
                "result cache %s: ignored %d of %d rows (schema drift); "
                "they will be recomputed",
                self._cache_path,
                self._n_dropped,
                len(payload),
            )
