"""Campaign result store.

The paper's figures reuse the same underlying executions: Figures 4-8 all
draw on the 120-workload sample under UM/CT/DICER across core counts, and
Figure 1 plus the CT-F/CT-T classification share the full 3481-pair UM/CT
runs. :class:`ResultStore` memoises :class:`~repro.experiments.runner.
PairResult` objects per (hp, be, n_be, policy) in memory, with optional
persistence so a long campaign survives process restarts.

Bulk requests (:meth:`ResultStore.get_many` / :meth:`ResultStore.prefetch`)
partition the requested cells into cached vs. pending and fan the pending
ones out over a :class:`~repro.experiments.supervise.SupervisedExecutor`.
Worker results merge back into the parent cache as they arrive, and — when
a ``cache_path`` is configured — are checkpointed to disk every
``checkpoint_every`` results, so an interrupted paper-scale campaign
resumes mid-grid instead of restarting.

Persistence is pluggable (DESIGN.md §11): the store holds results, the
:class:`~repro.experiments.backends.StoreBackend` engine holds the disk.
The ``file`` engine is the historical crash-safe JSON artefact
(DESIGN.md §9): payload → temp file → fsync → atomic rename → parent
fsync, with a row count and SHA-256 checksum verified on load. The
``sqlite`` engine keeps one row per result in a WAL-mode database,
checkpoints by upserting only what changed, and tolerates many
cooperating writer processes — the engine the shared campaign queue
(:mod:`repro.experiments.queue`) runs on. Either way a corrupt artefact
is *detected*, quarantined to ``<path>.corrupt-<digest>``, and salvaged
row-by-row instead of being trusted or silently dropped. During a bulk
request, SIGINT/SIGTERM flush a checkpoint before the process dies, and
a mid-campaign exception flushes one before propagating — interrupted
grids always resume from the last completed cell.
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Iterable

from repro.core.policies import Policy
from repro.experiments.backends import StoreBackend, open_backend
from repro.experiments.parallel import Cell
from repro.experiments.supervise import (
    FailedCell,
    SupervisedExecutor,
    SuperviseConfig,
)
from repro.obs import get_event_log, get_registry
from repro.experiments.runner import PairResult, run_pair
from repro.sim.contention import _check_precision
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.workloads.mix import make_mix

__all__ = ["ResultStore"]

_log = logging.getLogger(__name__)

#: Fields persisted per row (the decision trace is dropped — it is bulky and
#: only examples/tests inspect it).
_PERSISTED_FIELDS = (
    "hp_name",
    "be_name",
    "n_be",
    "policy",
    "hp_norm_ipc",
    "be_norm_ipc",
    "hp_slowdown",
    "efu",
    "duration_s",
    "hp_completions",
)


class ResultStore:
    """Memoising executor for (workload, policy, size) experiments.

    Parameters
    ----------
    platform:
        Platform every execution runs on.
    cache_path:
        Optional artefact for persistence across processes (JSON file or
        SQLite database, see ``backend``).
    n_workers:
        Worker processes for bulk requests: ``1`` (default) keeps the exact
        serial execution path, ``0``/``None`` auto-detects from the CPU
        count, ``N > 1`` fans pending cells out over N processes. Serial
        and parallel execution produce bit-identical results.
    checkpoint_every:
        With a ``cache_path``, how many freshly computed results may
        accumulate before the cache is checkpointed mid-campaign. The file
        backend rewrites the whole artefact per checkpoint, so mid-campaign
        checkpoints are additionally rate-limited to one per
        ``min_checkpoint_interval_s`` seconds; campaigns fast enough to
        finish inside that window just save once at the end.
    supervise:
        A :class:`~repro.experiments.supervise.SuperviseConfig` giving
        bulk requests retry / per-cell timeout / quarantine semantics.
        ``None`` (default) is strict: no retries, the first failure
        aborts with a :class:`~repro.experiments.supervise.CampaignError`
        wrapping the original exception (a checkpoint is still flushed
        first). With ``on_failure="skip"``, quarantined cells
        return ``None`` placeholders from :meth:`get_many` and accumulate
        in :attr:`failures`.
    min_checkpoint_interval_s:
        Override of the mid-campaign checkpoint rate limit (mostly for
        tests; campaigns keep the default).
    precision:
        Solver precision every execution in this store runs under
        ("exact" = bitwise-reproducible, "fast" = tolerance-contracted
        vectorised kernel; DESIGN.md §10). A store is single-mode: the
        mode is stamped into the persisted cache, a cache written under
        the other mode refuses to load, and per-request ``precision``
        overrides that disagree with the store are rejected — fast and
        exact results never merge into one save.
    backend:
        Persistence engine for ``cache_path``: ``"file"`` (checksummed
        atomic-rename JSON), ``"sqlite"`` (WAL database, incremental
        row upserts, concurrent-writer safe), ``"auto"`` (default —
        resolve by path suffix / file magic), or a ready
        :class:`~repro.experiments.backends.StoreBackend` instance.
    batch_label:
        Optional tag stamped on this store's ``campaign.batch`` telemetry
        events — campaign-queue workers set it to their worker id so a
        shared telemetry file attributes batches to workers.
    pool:
        Execution pool for bulk requests: ``"processes"`` (default,
        crash-isolated workers) or ``"threads"`` (GIL-sharing workers
        over the in-process solver caches — built for the compiled
        kernel; see DESIGN.md §12). Serial, thread and process campaigns
        produce digest-identical artefacts.
    kernel:
        Solver kernel request stamped into every execution
        (``auto``/``exact``/``fast``/``compiled``; DESIGN.md §12).
        Like ``precision``, a store is single-kernel-request: a
        per-request ``kernel`` that disagrees is refused, and the
        request must not contradict the store's ``precision``
        (``exact`` kernel ⇔ exact precision). ``auto`` (default)
        composes with either precision and picks the best available
        fast implementation at solve time — kernels honouring the fast
        tolerance contract share cache keys, so artefact contents do
        not depend on which fast implementation ran.
    """

    #: Minimum seconds between mid-campaign checkpoint rewrites.
    _MIN_CHECKPOINT_INTERVAL_S = 5.0

    def __init__(
        self,
        platform: PlatformConfig = TABLE1_PLATFORM,
        cache_path: Path | str | None = None,
        *,
        n_workers: int | None = 1,
        checkpoint_every: int = 256,
        supervise: SuperviseConfig | None = None,
        min_checkpoint_interval_s: float | None = None,
        precision: str = "exact",
        backend: str | StoreBackend = "auto",
        batch_label: str | None = None,
        pool: str = "processes",
        kernel: str = "auto",
    ) -> None:
        from repro.sim.kernels import check_kernel_precision

        self.platform = platform
        self.precision = _check_precision(precision)
        check_kernel_precision(kernel, self.precision)
        self.kernel = kernel
        self._supervise = supervise if supervise is not None else SuperviseConfig()
        self._executor = SupervisedExecutor(
            n_workers, config=self._supervise, label=batch_label, pool=pool
        )
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._checkpoint_every = checkpoint_every
        self._min_checkpoint_interval_s = (
            self._MIN_CHECKPOINT_INTERVAL_S
            if min_checkpoint_interval_s is None
            else min_checkpoint_interval_s
        )
        self._results: dict[tuple[str, str, int, str], PairResult] = {}
        self._cache_path = Path(cache_path) if cache_path else None
        self._backend: StoreBackend | None = (
            open_backend(self._cache_path, backend)
            if self._cache_path
            else None
        )
        #: Keys computed since the last save (the sqlite backend persists
        #: only these per checkpoint instead of rewriting everything).
        self._dirty: set[tuple[str, str, int, str]] = set()
        self._n_loaded = 0
        self._n_dropped = 0
        self._n_salvaged = 0
        self._n_corrupt_files = 0
        self._n_computed = 0
        self._n_served = 0
        self._pending_checkpoint = 0
        self._last_checkpoint = float("-inf")
        #: Quarantined cells from bulk requests (``on_failure="skip"``).
        self.failures: list[FailedCell] = []
        if self._backend and self._backend.exists():
            self._load()

    @property
    def n_workers(self) -> int:
        """Worker process count used for bulk requests."""
        return self._executor.n_workers

    @property
    def pool(self) -> str:
        """Execution pool bulk requests fan out over."""
        return self._executor.pool

    @property
    def supervise_config(self) -> SuperviseConfig:
        """The retry/timeout/failure policy bulk requests run under."""
        return self._supervise

    @property
    def backend(self) -> StoreBackend | None:
        """The persistence engine (``None`` for a memory-only store)."""
        return self._backend

    @staticmethod
    def _key(cell: Cell) -> tuple[str, str, int, str]:
        hp_name, be_name, n_be, policy = cell
        return (hp_name, be_name, n_be, policy.name)

    def _run_kwargs(self, run_kwargs: dict) -> dict:
        """Stamp the store's precision and kernel into per-request kwargs.

        An explicit ``precision`` (or ``kernel``) that matches the store
        is redundant but allowed; one that disagrees would mix solver
        modes inside a single cache file and is refused.
        """
        requested = run_kwargs.get("precision")
        if requested is not None and requested != self.precision:
            raise ValueError(
                f"store runs precision={self.precision!r}; refusing "
                f"per-request precision={requested!r} (mixed-mode results "
                "must not merge into one cache)"
            )
        requested_kernel = run_kwargs.get("kernel")
        if requested_kernel is not None and requested_kernel != self.kernel:
            raise ValueError(
                f"store runs kernel={self.kernel!r}; refusing per-request "
                f"kernel={requested_kernel!r}"
            )
        return {
            **run_kwargs,
            "precision": self.precision,
            "kernel": self.kernel,
        }

    # -- execution ---------------------------------------------------------

    def get(
        self,
        hp_name: str,
        be_name: str,
        policy: Policy,
        n_be: int = 9,
        **run_kwargs,
    ) -> PairResult:
        """Fetch (or run and memoise) one experiment."""
        run_kwargs = self._run_kwargs(run_kwargs)
        key = (hp_name, be_name, n_be, policy.name)
        registry = get_registry()
        result = self._results.get(key)
        if result is None:
            if registry.enabled:
                with registry.histogram("store.cell_seconds").time():
                    result = run_pair(
                        make_mix(hp_name, be_name, n_be=n_be),
                        policy,
                        self.platform,
                        **run_kwargs,
                    )
            else:
                result = run_pair(
                    make_mix(hp_name, be_name, n_be=n_be),
                    policy,
                    self.platform,
                    **run_kwargs,
                )
            self._results[key] = result
            self._dirty.add(key)
            self._n_computed += 1
            registry.counter("store.computed").inc()
        else:
            self._n_served += 1
            registry.counter("store.served").inc()
        return result

    def get_many(
        self,
        cells: Iterable[Cell],
        *,
        on_result: Callable[[int, Cell, PairResult], None] | None = None,
        **run_kwargs,
    ) -> list[PairResult | None]:
        """Fetch a batch of cells, fanning pending ones out over workers.

        Cells are ``(hp_name, be_name, n_be, policy)`` tuples. The request
        is partitioned into cached vs. pending; pending cells (deduplicated,
        in first-appearance order) run on the store's supervised executor,
        merge back into the cache as they complete, and are checkpointed to
        ``cache_path`` along the way. Returns results aligned
        index-for-index with ``cells``. ``on_result(index, cell, result)``
        fires per freshly computed cell (in submission order over the
        deduplicated pending batch) after it has merged into the cache —
        campaign-queue workers use it to heartbeat their leases.

        Failure semantics follow the store's ``supervise`` config: by
        default the first failure aborts (after a checkpoint flush) with
        a :class:`~repro.experiments.supervise.CampaignError` whose
        ``cause`` is the original exception; with ``on_failure="skip"`` a
        quarantined
        cell yields ``None`` at its positions and a
        :class:`~repro.experiments.supervise.FailedCell` in
        :attr:`failures`. A SIGINT/SIGTERM during the bulk request
        flushes a checkpoint before the process dies.
        """
        cells = list(cells)
        run_kwargs = self._run_kwargs(run_kwargs)
        keys = [self._key(cell) for cell in cells]
        pending: dict[tuple[str, str, int, str], Cell] = {}
        for key, cell in zip(keys, cells):
            if key not in self._results and key not in pending:
                pending[key] = cell
        self._n_served += len(cells) - len(pending)
        registry = get_registry()
        registry.counter("store.served").inc(len(cells) - len(pending))

        if pending:
            pending_keys = list(pending)

            def merge(index: int, cell: Cell, result: PairResult) -> None:
                key = pending_keys[index]
                self._results[key] = result
                self._dirty.add(key)
                self._n_computed += 1
                registry.counter("store.computed").inc()
                self._pending_checkpoint += 1
                if (
                    self._backend
                    and self._pending_checkpoint >= self._checkpoint_every
                    and time.monotonic() - self._last_checkpoint
                    >= self._min_checkpoint_interval_s
                ):
                    self.save()
                if on_result is not None:
                    on_result(index, cell, result)

            try:
                with self._checkpoint_on_signal():
                    outcome = self._executor.run(
                        list(pending.values()),
                        self.platform,
                        run_kwargs=run_kwargs,
                        on_result=merge,
                    )
            finally:
                # A checkpoint survives whatever interrupted the campaign:
                # quarantine-abort, a worker exception, KeyboardInterrupt.
                if self._backend and self._pending_checkpoint:
                    self.save()
            if outcome.failures:
                self.failures.extend(outcome.failures)
                registry.counter("store.failed_cells").inc(
                    len(outcome.failures)
                )

        return [self._results.get(key) for key in keys]

    def prefetch(
        self,
        cells: Iterable[Cell],
        **run_kwargs,
    ) -> dict[str, int]:
        """Ensure every cell is computed; report the cached/run partition.

        Returns ``{"requested": ..., "cached": ..., "computed": ...,
        "failed": ...}``. All four counts are per *position* in the
        batch: the first occurrence of each freshly executed cell counts
        as ``computed``, duplicates of it (and anything already held)
        count as ``cached``, and every position whose cell ended the
        batch quarantined counts as ``failed`` — so the three always sum
        to ``requested`` even when a failing cell appears several times.
        """
        cells = list(cells)
        keys = [self._key(cell) for cell in cells]
        pending_before = {key for key in keys if key not in self._results}
        failed_before = len(self.failures)
        self.get_many(cells, **run_kwargs)
        failed_keys = {
            (f.hp_name, f.be_name, f.n_be, f.policy)
            for f in self.failures[failed_before:]
        }
        computed = failed = cached = 0
        counted_new: set[tuple[str, str, int, str]] = set()
        for key in keys:
            if key in failed_keys:
                failed += 1
            elif key in pending_before and key not in counted_new:
                counted_new.add(key)
                computed += 1
            else:
                cached += 1
        return {
            "requested": len(cells),
            "cached": cached,
            "computed": computed,
            "failed": failed,
        }

    def __len__(self) -> int:
        return len(self._results)

    def failure_manifest(self) -> list[dict]:
        """Quarantined cells as plain dicts (for reports / JSON)."""
        return [
            {
                "hp_name": f.hp_name,
                "be_name": f.be_name,
                "n_be": f.n_be,
                "policy": f.policy,
                "precision": f.precision,
                "attempts": len(f.attempts),
                "outcome": f.last_error.outcome if f.last_error else "?",
                "error": (
                    f"{f.last_error.error_type}: {f.last_error.message}"
                    if f.last_error and f.last_error.error_type
                    else ""
                ),
            }
            for f in self.failures
        ]

    def stats(self) -> dict[str, int]:
        """Bookkeeping counters for campaign reports.

        ``cached``: results currently held; ``loaded``: rows restored from
        the persisted cache; ``recomputed``: executions this store ran;
        ``served``: requests answered from memory; ``dropped``: persisted
        *rows* ignored on load (schema drift, or salvaged rows whose
        precision stamp cannot be trusted); ``corrupt_files``: cache
        files that failed integrity/parse checks (quarantined, counted
        separately from row drops); ``salvaged``: rows recovered out of a
        corrupt file; ``failed_cells``: cells quarantined by the
        supervisor.
        """
        return {
            "cached": len(self._results),
            "loaded": self._n_loaded,
            "recomputed": self._n_computed,
            "served": self._n_served,
            "dropped": self._n_dropped,
            "corrupt_files": self._n_corrupt_files,
            "salvaged": self._n_salvaged,
            "failed_cells": len(self.failures),
        }

    # -- persistence ---------------------------------------------------------

    @contextmanager
    def _checkpoint_on_signal(self):
        """Flush a checkpoint when SIGINT/SIGTERM lands mid-campaign.

        Installs chaining handlers for the duration of a bulk request:
        the checkpoint is written first, then the previous handler (or
        default action) runs, so ``kill -TERM`` of a mid-grid campaign
        leaves a valid, integrity-checked cache behind. Signal handlers
        only exist on the main thread; elsewhere this is a no-op.
        """
        if (
            not self._backend
            or threading.current_thread() is not threading.main_thread()
        ):
            yield
            return

        previous: dict[int, object] = {}

        def flush_and_chain(signum, frame):
            try:
                self.save()
                log = get_event_log()
                if log.enabled:
                    log.emit(
                        "store.signal_flush",
                        signal=signal.Signals(signum).name,
                        results=len(self._results),
                    )
            finally:
                prev = previous.get(signum, signal.SIG_DFL)
                signal.signal(signum, prev)
                if callable(prev):
                    prev(signum, frame)
                else:
                    # SIG_DFL (or SIG_IGN, where re-raising is harmless):
                    # re-deliver so the default action runs.
                    os.kill(os.getpid(), signum)

        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous[signum] = signal.signal(signum, flush_and_chain)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            yield
            return
        try:
            yield
        finally:
            for signum, prev in previous.items():
                try:
                    signal.signal(signum, prev)
                except (ValueError, OSError):  # pragma: no cover
                    pass

    def save(self) -> None:
        """Checkpoint all results to the cache backend (no-op without one).

        The file backend atomically rewrites the whole checksummed
        artefact; the sqlite backend upserts only the rows computed since
        the previous save. Either way the artefact afterwards holds every
        result this store knows.
        """
        if not self._backend:
            return
        t0 = time.perf_counter()
        rows_by_key = {
            key: {k: v for k, v in asdict(r).items() if k in _PERSISTED_FIELDS}
            for key, r in self._results.items()
        }
        rows = list(rows_by_key.values())
        dirty = [rows_by_key[key] for key in rows_by_key if key in self._dirty]
        self._backend.save(rows, self.precision, dirty=dirty)
        self._dirty.clear()
        self._pending_checkpoint = 0
        self._last_checkpoint = time.monotonic()
        registry = get_registry()
        if registry.enabled:
            elapsed = time.perf_counter() - t0
            registry.counter("store.checkpoints").inc()
            registry.histogram("store.checkpoint_seconds").observe(elapsed)
            log = get_event_log()
            if log.enabled:
                log.emit(
                    "store.checkpoint",
                    path=str(self._cache_path),
                    backend=self._backend.kind,
                    results=len(self._results),
                    written=len(dirty),
                    seconds=round(elapsed, 6),
                )

    def _load(self) -> None:
        assert self._backend is not None
        loaded = self._backend.load()
        self._n_corrupt_files += loaded.corrupt_files
        rows = loaded.rows
        n_total = len(rows)
        file_precision = loaded.precision
        if (
            not loaded.salvaged
            and file_precision is not None
            and file_precision != self.precision
        ):
            raise ValueError(
                f"result cache {self._cache_path} was written under "
                f"precision={file_precision!r} but this store runs "
                f"precision={self.precision!r}; refusing to merge "
                "mixed-mode results (use a separate cache path per mode)"
            )
        if loaded.salvaged and self.precision != (file_precision or "exact"):
            # A corrupt cache carries no trustworthy precision stamp;
            # salvaged rows keep the mode the artefact declared before it
            # was damaged and must not leak into a store running the
            # other mode. This is a precision drop, not schema drift —
            # logged as such, with the real row count.
            self._n_dropped += n_total
            if n_total:
                _log.warning(
                    "result cache %s: dropping all %d salvaged row(s) — "
                    "they were written under precision=%r and this store "
                    "runs precision=%r; they will be recomputed",
                    self._cache_path,
                    n_total,
                    file_precision or "exact",
                    self.precision,
                )
            rows = []
        n_schema_dropped = 0
        for row in rows:
            try:
                result = PairResult(**row)
            except TypeError:
                n_schema_dropped += 1
                continue  # schema drift: recompute
            key = (result.hp_name, result.be_name, result.n_be, result.policy)
            self._results[key] = result
            self._n_loaded += 1
            if loaded.salvaged:
                self._n_salvaged += 1
        self._n_dropped += n_schema_dropped
        if n_schema_dropped:
            _log.warning(
                "result cache %s: ignored %d of %d rows (schema drift); "
                "they will be recomputed",
                self._cache_path,
                n_schema_dropped,
                n_total,
            )
