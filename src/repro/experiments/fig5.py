"""Figure 5 — normalised HP and BE IPC per workload for UM / CT / DICER.

The paper's per-workload panels, split by class: for CT-Favoured workloads
DICER should track CT on HP performance (while lifting BE throughput); for
CT-Thwarted workloads it should track UM. Rendered as the per-workload rows
plus the class-level aggregate the text quotes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.grid import GridData
from repro.util.stats import geomean
from repro.util.tables import format_table

__all__ = ["Fig5Data", "extract_fig5", "render_fig5"]


@dataclass(frozen=True)
class Fig5Row:
    """One workload's normalised IPCs under the three policies."""

    label: str
    workload_class: str
    hp_norm: dict[str, float]
    be_norm: dict[str, float]


@dataclass(frozen=True)
class Fig5Data:
    """Per-workload normalised IPCs under each policy."""
    rows: tuple[Fig5Row, ...]
    policies: tuple[str, ...]

    def class_geomean(
        self, workload_class: str, policy: str
    ) -> tuple[float, float]:
        """(HP, BE) geomean normalised IPC for one class and policy."""
        hp = [
            r.hp_norm[policy]
            for r in self.rows
            if r.workload_class == workload_class
        ]
        be = [
            r.be_norm[policy]
            for r in self.rows
            if r.workload_class == workload_class
        ]
        if not hp:
            raise ValueError(f"no rows in class {workload_class!r}")
        return geomean(hp), geomean(be)


def extract_fig5(grid: GridData, *, n_cores: int = 10) -> Fig5Data:
    """Project Figure 5's rows out of the campaign grid."""
    rows: dict[str, Fig5Row] = {}
    for point in grid.points:
        if point.n_cores != n_cores:
            continue
        label = point.result.label
        row = rows.get(label)
        if row is None:
            row = Fig5Row(
                label=label,
                workload_class=point.workload.label,
                hp_norm={},
                be_norm={},
            )
            rows[label] = row
        row.hp_norm[point.policy] = point.result.hp_norm_ipc
        row.be_norm[point.policy] = point.result.be_norm_ipc
    if not rows:
        raise ValueError(f"grid holds no points at {n_cores} cores")
    ordered = sorted(
        rows.values(), key=lambda r: (r.workload_class, r.label)
    )
    return Fig5Data(rows=tuple(ordered), policies=grid.policies)


def render_fig5(data: Fig5Data, *, max_rows_per_class: int = 15) -> str:
    """Class aggregates plus per-workload rows, per the paper's panels."""
    sections = []
    for cls in ("CT-F", "CT-T"):
        class_rows = [r for r in data.rows if r.workload_class == cls]
        if not class_rows:
            continue
        agg = [
            [policy, *data.class_geomean(cls, policy)]
            for policy in data.policies
        ]
        sections.append(
            format_table(
                ["Policy", "HP norm IPC (geomean)", "BE norm IPC (geomean)"],
                agg,
                title=f"Figure 5 — {cls} class ({len(class_rows)} workloads)",
            )
        )
        detail = [
            [r.label]
            + [r.hp_norm.get(p, float("nan")) for p in data.policies]
            + [r.be_norm.get(p, float("nan")) for p in data.policies]
            for r in class_rows[:max_rows_per_class]
        ]
        headers = (
            ["Workload"]
            + [f"HP {p}" for p in data.policies]
            + [f"BE {p}" for p in data.policies]
        )
        sections.append(format_table(headers, detail))
    return "\n\n".join(sections)
