"""Pluggable :class:`ResultStore` persistence backends (DESIGN.md §11).

Two engines behind one :class:`~repro.experiments.backends.base.
StoreBackend` contract:

* :class:`~repro.experiments.backends.filejson.FileBackend` — the
  historical checksummed atomic-rename JSON file. Byte-identical
  artefacts, single writer, whole-file checkpoints.
* :class:`~repro.experiments.backends.sqlite.SqliteBackend` — WAL-mode
  SQLite with row-level upserts. Incremental checkpoints, safe
  concurrent writers — the engine the shared campaign queue
  (:mod:`repro.experiments.queue`) requires.

:func:`open_backend` picks an engine for a path; ``"auto"`` resolves by
suffix (``.db`` / ``.sqlite`` / ``.sqlite3`` → SQLite), falling back to
sniffing the 16-byte SQLite magic on existing files so a ``--cache``
pointed at an SQLite artefact under any name still opens correctly.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.backends.base import (
    CACHE_VERSION,
    LoadedRows,
    StoreBackend,
    rows_digest,
    salvage_rows,
)
from repro.experiments.backends.filejson import FileBackend
from repro.experiments.backends.sqlite import SqliteBackend

__all__ = [
    "BACKENDS",
    "CACHE_VERSION",
    "FileBackend",
    "LoadedRows",
    "SqliteBackend",
    "StoreBackend",
    "open_backend",
    "rows_digest",
    "salvage_rows",
]

#: Registry of engine name -> backend class.
BACKENDS: dict[str, type[StoreBackend]] = {
    FileBackend.kind: FileBackend,
    SqliteBackend.kind: SqliteBackend,
}

#: Path suffixes that auto-resolve to the SQLite engine.
_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")

#: The on-disk magic every SQLite database file starts with.
_SQLITE_MAGIC = b"SQLite format 3\x00"


def open_backend(
    path: Path | str, backend: str | StoreBackend = "auto"
) -> StoreBackend:
    """Resolve ``backend`` for ``path`` into a :class:`StoreBackend`.

    ``backend`` may be a ready instance (returned as-is), an engine name
    from :data:`BACKENDS`, or ``"auto"``: suffix first, then the SQLite
    file magic for existing files, else the JSON file engine.
    """
    if isinstance(backend, StoreBackend):
        return backend
    path = Path(path)
    if backend == "auto":
        if path.suffix.lower() in _SQLITE_SUFFIXES:
            return SqliteBackend(path)
        if path.exists():
            try:
                with open(path, "rb") as fh:
                    if fh.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC:
                        return SqliteBackend(path)
            except OSError:
                pass
        return FileBackend(path)
    try:
        return BACKENDS[backend](path)
    except KeyError:
        raise ValueError(
            f"unknown store backend {backend!r}; expected 'auto' or one of "
            f"{sorted(BACKENDS)}"
        ) from None
