"""SQLite store backend: WAL mode, row-level upserts, concurrent writers.

Where :class:`~repro.experiments.backends.filejson.FileBackend` rewrites
one whole JSON artefact per checkpoint, this backend keeps one row per
result in an SQLite database and checkpoints by *upserting only the rows
that changed* — a mid-grid checkpoint of a 3481-pair campaign writes a
handful of rows, not megabytes. WAL journaling plus SQLite's own
transaction locking make the artefact safe for many cooperating writer
processes (the campaign-queue workers of DESIGN.md §11), each committing
its freshly computed cells into the shared database as it drains the
queue.

Layout::

    results(hp_name, be_name, n_be, policy, precision, row)
        -- row is the canonical JSON of the persisted PairResult dict;
        -- (hp_name, be_name, n_be, policy) is the primary key;
        -- precision stamps the solver mode per row (DESIGN.md §10)
    meta(key, value)   -- format version + store-level precision stamp

Rows round-trip through JSON text, so a result read back from SQLite is
*value-identical* to one read from the JSON file backend — int stays
int, float stays float — which is what lets ``StoreBackend.digest()``
compare artefacts across engines byte-for-byte.

Corruption semantics mirror the file backend: a database that fails to
open or fails ``PRAGMA integrity_check`` is quarantined to
``<path>.corrupt-<digest>`` and every structurally readable row is
salvaged; a file that is not SQLite at all is quarantined with nothing
salvageable. Load never raises on corruption.
"""

from __future__ import annotations

import json
import logging
import sqlite3
from contextlib import closing

from repro.experiments.backends.base import (
    CACHE_VERSION,
    LoadedRows,
    StoreBackend,
)

__all__ = ["SqliteBackend"]

_log = logging.getLogger(__name__)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    hp_name   TEXT    NOT NULL,
    be_name   TEXT    NOT NULL,
    n_be      INTEGER NOT NULL,
    policy    TEXT    NOT NULL,
    precision TEXT    NOT NULL,
    row       TEXT    NOT NULL,
    PRIMARY KEY (hp_name, be_name, n_be, policy)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: Seconds a writer waits on a locked database before giving up.
_BUSY_TIMEOUT_S = 30.0


class SqliteBackend(StoreBackend):
    """One SQLite database per store; safe for concurrent writers."""

    kind = "sqlite"

    # Connections are opened per operation and closed before returning:
    # no long-lived handle to leak across fork() into campaign workers,
    # and every save is one self-contained transaction.

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_S)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    def exists(self) -> bool:
        """The artefact exists once it holds any schema at all."""
        return self.path.exists()

    # -- persistence -----------------------------------------------------

    def save(
        self,
        rows: list[dict],
        precision: str,
        *,
        dirty: list[dict] | None = None,
    ) -> None:
        """Upsert ``dirty`` (or, without the hint, every row) in one
        transaction.

        The incremental path relies on SQLite itself being the durable
        union of every previous commit: rows already on disk need no
        rewrite, so a checkpoint costs O(new results) instead of
        O(campaign). Concurrent savers interleave safely — upserts are
        keyed by cell and every writer computes identical values for
        identical cells (determinism is load-bearing, DESIGN.md §9).
        """
        to_write = rows if dirty is None else dirty
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with closing(self._connect()) as conn:
            with conn:  # one transaction: schema + meta + upserts
                conn.executescript(_SCHEMA)
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES ('version', ?)",
                    (str(CACHE_VERSION),),
                )
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES ('precision', ?)",
                    (precision,),
                )
                conn.executemany(
                    "INSERT OR REPLACE INTO results VALUES (?, ?, ?, ?, ?, ?)",
                    [
                        (
                            row["hp_name"],
                            row["be_name"],
                            row["n_be"],
                            row["policy"],
                            precision,
                            json.dumps(
                                row, sort_keys=True, separators=(",", ":")
                            ),
                        )
                        for row in to_write
                    ],
                )

    # -- loading ---------------------------------------------------------

    def _read_all(self, conn: sqlite3.Connection) -> tuple[list[dict], str | None]:
        """(rows in insertion order, precision stamp) from a healthy db.

        A database that passes integrity but has never been saved to
        (no schema yet) reads as empty rather than corrupt.
        """
        try:
            rows = [
                json.loads(row_json)
                for (row_json,) in conn.execute(
                    "SELECT row FROM results ORDER BY rowid"
                )
            ]
            stamp = conn.execute(
                "SELECT value FROM meta WHERE key = 'precision'"
            ).fetchone()
        except sqlite3.OperationalError as exc:
            if "no such table" in str(exc):
                return [], None
            raise
        return rows, stamp[0] if stamp else None

    @staticmethod
    def _salvage_read(conn: sqlite3.Connection) -> tuple[list[dict], str | None]:
        """Row-by-row best-effort read from a damaged database.

        Fetches one row at a time so everything stored on pages *before*
        the damage is recovered — the cursor dies at the first bad page
        (the SQLite analogue of the file backend's truncation salvage).
        """
        rows: list[dict] = []
        try:
            cursor = conn.execute("SELECT row FROM results ORDER BY rowid")
            while True:
                try:
                    fetched = cursor.fetchone()
                except sqlite3.Error:
                    break
                if fetched is None:
                    break
                try:
                    rows.append(json.loads(fetched[0]))
                except ValueError:
                    continue
        except sqlite3.Error:
            pass
        stamp = None
        try:
            found = conn.execute(
                "SELECT value FROM meta WHERE key = 'precision'"
            ).fetchone()
            stamp = found[0] if found else None
        except sqlite3.Error:
            pass
        return rows, stamp

    def _integrity_ok(self, conn: sqlite3.Connection) -> str | None:
        """``None`` when ``PRAGMA integrity_check`` passes, else the fault."""
        verdict = conn.execute("PRAGMA integrity_check").fetchone()
        if verdict and verdict[0] == "ok":
            return None
        return str(verdict[0]) if verdict else "integrity_check returned nothing"

    def _quarantine_db(self, reason: str, rows: list[dict]) -> None:
        """Move the damaged database (and its WAL sidecars) aside."""
        try:
            raw = self.path.read_bytes()
        except OSError:  # pragma: no cover - vanished mid-quarantine
            raw = reason.encode("utf-8")
        moved = self._quarantine(raw)
        for sidecar in ("-wal", "-shm"):
            side = self.path.with_name(self.path.name + sidecar)
            if side.exists():
                try:
                    side.unlink()
                except OSError:  # pragma: no cover
                    pass
        self._emit_corrupt(reason, moved, len(rows))

    def load(self) -> LoadedRows:
        try:
            # Plain connection: the WAL pragma writes to the header, which
            # a damaged database may reject before salvage gets a chance.
            with closing(
                sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_S)
            ) as conn:
                try:
                    fault = self._integrity_ok(conn)
                except sqlite3.Error as exc:
                    fault = f"malformed ({exc})"
                if fault is None:
                    rows, stamp = self._read_all(conn)
                    return LoadedRows(
                        rows=rows,
                        # A populated pre-stamp db reads as exact, like
                        # the file backend's legacy layout; an empty db
                        # carries no stamp to check.
                        precision=stamp if stamp else ("exact" if rows else None),
                    )
                # Integrity failure: salvage whatever still SELECTs.
                rows, stamp = self._salvage_read(conn)
        except sqlite3.Error as exc:
            # Not a database / unopenable: nothing to salvage.
            fault = f"unopenable ({exc})"
            rows, stamp = [], None
        except OSError:
            _log.warning(
                "result cache %s is unreadable (I/O error); all results "
                "will be recomputed",
                self.path,
            )
            return LoadedRows(precision=None, corrupt_files=1)
        self._quarantine_db(fault, rows)
        return LoadedRows(
            rows=rows,
            precision=stamp if stamp else "exact",
            salvaged=True,
            corrupt_files=1,
        )
