"""Checksummed atomic-rename JSON file backend (the historical format).

This is the persistence engine :class:`~repro.experiments.store.
ResultStore` has always had, factored behind the :class:`StoreBackend`
contract with byte-identical artefacts: a v2 payload carrying a row
count and a SHA-256 checksum, written to a temporary file, fsynced,
atomically renamed over the target, and the parent directory fsynced
(DESIGN.md §9/§11).

Temporary files are per-process — ``<name>.tmp.<pid>`` — so sibling
caches like ``grid.json`` and ``grid.jsonl`` no longer collide on one
``grid.tmp``, and two processes saving the same path cannot tear each
other's in-flight write (the final ``rename`` still makes the *last*
writer win whole-file; concurrent writers that must merge belong on the
SQLite backend). Stale temps left by dead processes are swept on the
next save.
"""

from __future__ import annotations

import json
import logging
import os
import re

from repro.experiments.backends.base import (
    CACHE_VERSION,
    LoadedRows,
    StoreBackend,
    rows_digest,
    salvage_rows,
)

__all__ = ["FileBackend"]

_log = logging.getLogger(__name__)


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # pragma: no cover - e.g. EPERM: alive, not ours
        return True
    return True


class FileBackend(StoreBackend):
    """One whole-file JSON artefact, torn-write-proof, single writer."""

    kind = "file"

    # -- persistence -----------------------------------------------------

    def _tmp_path(self):
        """This process's private temp name (``<name>.tmp.<pid>``)."""
        return self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")

    def _sweep_stale_temps(self) -> int:
        """Remove temp files abandoned by processes that no longer exist.

        Only this backend's own ``<name>.tmp.<pid>`` scheme is swept —
        a temp whose pid is still alive belongs to a concurrent writer
        mid-save and is left alone.
        """
        removed = 0
        for tmp in self.path.parent.glob(self.path.name + ".tmp.*"):
            suffix = tmp.name.rsplit(".", 1)[-1]
            if not suffix.isdigit() or _pid_alive(int(suffix)):
                continue
            try:
                tmp.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent sweep
                pass
        return removed

    def save(
        self,
        rows: list[dict],
        precision: str,
        *,
        dirty: list[dict] | None = None,
    ) -> None:
        """Atomically rewrite the whole artefact (``dirty`` is ignored).

        payload → per-pid temp file → ``fsync`` → ``rename`` over the
        target → ``fsync`` of the parent directory. The payload embeds a
        row count and SHA-256 checksum that :meth:`load` verifies.
        """
        payload = {
            "version": CACHE_VERSION,
            "precision": precision,
            "n_rows": len(rows),
            "sha256": rows_digest(rows),
            "rows": rows,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_temps()
        tmp = self._tmp_path()
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        try:
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass

    # -- loading ---------------------------------------------------------

    def _quarantine_corrupt(self, raw: str, reason: str) -> list[dict]:
        """Set a corrupt cache aside and salvage what rows survive."""
        moved = self._quarantine(raw.encode("utf-8", errors="replace"))
        salvaged = salvage_rows(raw)
        self._emit_corrupt(reason, moved, len(salvaged))
        return salvaged

    def load(self) -> LoadedRows:
        try:
            # Decode permissively: a binary-garbage artefact is corrupt,
            # not fatal — it flows into the quarantine path below just
            # like invalid JSON.
            raw = self.path.read_bytes().decode("utf-8", errors="replace")
        except OSError:
            _log.warning(
                "result cache %s is unreadable (I/O error); all results "
                "will be recomputed",
                self.path,
            )
            return LoadedRows(precision=None, corrupt_files=1)
        salvaged = False
        # Caches that predate the precision stamp were all written by the
        # bitwise-exact solver.
        file_precision = "exact"
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError:
            rows = self._quarantine_corrupt(raw, "invalid JSON")
            salvaged = True
            # The v2 payload leads with its precision stamp, so it
            # usually survives tail truncation; recover it textually so
            # salvaged fast-mode rows cannot masquerade as exact ones.
            match = re.search(r'"precision"\s*:\s*"(exact|fast)"', raw)
            if match:
                file_precision = match.group(1)
        else:
            if isinstance(payload, list):
                # Legacy v1 layout: a bare row list, no integrity data.
                rows = payload
            elif isinstance(payload, dict):
                file_precision = payload.get("precision", "exact")
                rows = payload.get("rows")
                if not isinstance(rows, list):
                    rows = self._quarantine_corrupt(raw, "no row array")
                    salvaged = True
                elif payload.get("n_rows") != len(rows):
                    rows = self._quarantine_corrupt(
                        raw,
                        f"row count mismatch ({payload.get('n_rows')} "
                        f"recorded, {len(rows)} present)",
                    )
                    salvaged = True
                elif payload.get("sha256") != rows_digest(rows):
                    rows = self._quarantine_corrupt(raw, "checksum mismatch")
                    salvaged = True
            else:
                rows = self._quarantine_corrupt(raw, "unexpected payload type")
                salvaged = True
        return LoadedRows(
            rows=rows,
            precision=file_precision,
            salvaged=salvaged,
            corrupt_files=1 if salvaged else 0,
        )
