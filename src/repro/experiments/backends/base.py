"""The :class:`StoreBackend` contract shared by every persistence engine.

A backend owns exactly one artefact on disk (a checksummed JSON file, an
SQLite database, ...) and exposes the same three-verb surface to
:class:`~repro.experiments.store.ResultStore`:

``exists()``
    Is there anything on disk worth loading?
``load()``
    Read every persisted row, *detecting* (never trusting) corruption:
    a damaged artefact is quarantined to ``<path>.corrupt-<digest>`` and
    whatever rows survive are returned flagged ``salvaged``. Load never
    raises on corruption — a broken cache costs recomputation, not the
    campaign.
``save(rows, precision, dirty=...)``
    Persist the full row set. Backends that can write incrementally
    (SQLite) may persist only the ``dirty`` subset — rows changed since
    the previous save — instead of rewriting everything; whole-artefact
    backends ignore the hint. Either way the on-disk state after
    ``save`` equals ``rows``.

The row unit is the plain-dict projection of
:class:`~repro.experiments.runner.PairResult` (the store's
``_PERSISTED_FIELDS``); backends treat rows as opaque JSON objects keyed
by ``(hp_name, be_name, n_be, policy)``. Precision-mode bookkeeping
(DESIGN.md §10) stays in the store: backends merely record and report
the stamp, the store decides whether to refuse or drop.

Backends never share mutable state with the store and open no
long-lived file handles, so a backend instance survives ``fork()`` into
campaign worker processes without care (workers never touch it — all
persistence happens in the supervising parent).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import get_event_log, get_registry

__all__ = [
    "CACHE_VERSION",
    "LoadedRows",
    "StoreBackend",
    "rows_digest",
    "salvage_rows",
]

_log = logging.getLogger(__name__)

#: On-disk format version of the integrity-checked payload.
CACHE_VERSION = 2


def rows_digest(rows: list[dict]) -> str:
    """Canonical SHA-256 of the row list (stable across JSON round trips)."""
    canonical = json.dumps(rows, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def salvage_rows(text: str) -> list[dict]:
    """Best-effort row recovery from corrupt/truncated JSON.

    Scans forward from the first ``[`` decoding one object at a time, so
    every row that made it to disk intact before a crash truncated the
    file is recovered. Works on both the v2 wrapper (``"rows": [...``)
    and the legacy bare-list layout.
    """
    decoder = json.JSONDecoder()
    rows: list[dict] = []
    i = text.find("[")
    if i < 0:
        return rows
    i += 1
    n = len(text)
    while i < n:
        while i < n and text[i] in ", \t\r\n":
            i += 1
        if i >= n or text[i] != "{":
            break
        try:
            obj, i = decoder.raw_decode(text, i)
        except ValueError:
            break
        if isinstance(obj, dict):
            rows.append(obj)
    return rows


@dataclass
class LoadedRows:
    """What one :meth:`StoreBackend.load` produced.

    ``precision`` is the stamp found on disk (``"exact"`` for artefacts
    that predate the stamp, ``None`` when nothing trustworthy could be
    read at all — e.g. an unreadable file). ``salvaged`` rows came out
    of a quarantined artefact and carry no integrity guarantee beyond
    being structurally complete. ``corrupt_files`` counts artefacts
    that failed integrity/parse checks during this load.
    """

    rows: list[dict] = field(default_factory=list)
    precision: str | None = "exact"
    salvaged: bool = False
    corrupt_files: int = 0


class StoreBackend(ABC):
    """One persistence engine for a :class:`ResultStore` artefact."""

    #: Short engine name ("file", "sqlite") used by factories and reports.
    kind: str = "?"

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        """Whether an artefact is present to :meth:`load` from."""
        return self.path.exists()

    @abstractmethod
    def load(self) -> LoadedRows:
        """Read every persisted row (see the contract in the module doc)."""

    @abstractmethod
    def save(
        self,
        rows: list[dict],
        precision: str,
        *,
        dirty: list[dict] | None = None,
    ) -> None:
        """Persist ``rows`` (``dirty`` = changed-since-last-save hint)."""

    # -- shared quarantine plumbing --------------------------------------

    def _quarantine(self, digest_source: bytes) -> str:
        """Move the damaged artefact aside as content-addressed evidence.

        Returns the destination (or ``"<unmovable>"``); repeated crashes
        keep distinct evidence because the name embeds a digest of the
        damaged content.
        """
        get_registry().counter("store.corrupt_files").inc()
        digest = hashlib.sha256(digest_source).hexdigest()[:12]
        quarantine = self.path.with_name(self.path.name + f".corrupt-{digest}")
        try:
            os.replace(self.path, quarantine)
            moved = str(quarantine)
        except OSError:  # pragma: no cover - unlinked/permission races
            moved = "<unmovable>"
        return moved

    def _emit_corrupt(self, reason: str, moved: str, n_salvaged: int) -> None:
        _log.warning(
            "result cache %s is unreadable (%s); quarantined to %s, "
            "salvaged %d row(s)",
            self.path,
            reason,
            moved,
            n_salvaged,
        )
        log = get_event_log()
        if log.enabled:
            log.emit(
                "store.cache_corrupt",
                path=str(self.path),
                quarantined=moved,
                reason=reason,
                salvaged=n_salvaged,
                backend=self.kind,
            )

    def digest(self) -> str:
        """Canonical content digest of the persisted rows.

        Rows are sorted canonically first, so two artefacts holding the
        same results digest identically regardless of backend engine,
        write order or worker count — the equality the multi-worker
        campaign-queue acceptance test and ``make queue-smoke`` assert.
        """
        loaded = self.load()
        ordered = sorted(
            loaded.rows,
            key=lambda r: json.dumps(r, sort_keys=True, separators=(",", ":")),
        )
        return rows_digest(ordered)
