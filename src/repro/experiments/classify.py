"""CT-Favoured / CT-Thwarted classification (paper Section 2.3.3).

A multiprogrammed workload is **CT-Favoured (CT-F)** when Cache-Takeover
improves HP's performance over Unmanaged, and **CT-Thwarted (CT-T)** when CT
offers no improvement or degrades it. The paper reports ~60 % of its 3481
pairs as CT-T.

Measurements here are noise-free simulation, so "no improvement" needs an
explicit materiality threshold; we classify CT-F only when CT improves HP's
slowdown by more than :data:`CT_F_THRESHOLD` (5 % relative), roughly the
run-to-run noise a hardware study would fold into the comparison. The
threshold is swept by the classification ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.policies import CacheTakeoverPolicy, UnmanagedPolicy
from repro.experiments.store import ResultStore
from repro.util.rng import make_rng
from repro.workloads.catalog import app_names

__all__ = [
    "CT_F_THRESHOLD",
    "PairClass",
    "ShootoutRow",
    "classify_pair",
    "classify_all",
    "representative_sample",
    "shootout",
]

#: Minimum relative HP-slowdown improvement for CT to count as "favoured".
CT_F_THRESHOLD = 0.05


@dataclass(frozen=True)
class PairClass:
    """Classification of one (HP, BE) pair."""

    hp_name: str
    be_name: str
    um_slowdown: float
    ct_slowdown: float

    @property
    def ct_favoured(self) -> bool:
        """CT improved HP's slowdown by more than the threshold."""
        improvement = (self.um_slowdown - self.ct_slowdown) / self.um_slowdown
        return improvement > CT_F_THRESHOLD

    @property
    def label(self) -> str:
        """``"CT-F"`` or ``"CT-T"``."""
        return "CT-F" if self.ct_favoured else "CT-T"


def classify_pair(
    store: ResultStore, hp_name: str, be_name: str, n_be: int = 9
) -> PairClass:
    """Classify one pair by running (or fetching) its UM and CT executions."""
    um = store.get(hp_name, be_name, UnmanagedPolicy(), n_be=n_be)
    ct = store.get(hp_name, be_name, CacheTakeoverPolicy(), n_be=n_be)
    return PairClass(
        hp_name=hp_name,
        be_name=be_name,
        um_slowdown=um.hp_slowdown,
        ct_slowdown=ct.hp_slowdown,
    )


def classify_all(
    store: ResultStore,
    n_be: int = 9,
    hp_names: Iterable[str] | None = None,
    be_names: Iterable[str] | None = None,
) -> list[PairClass]:
    """Classify every (HP, BE) pair over the catalog (3481 by default).

    The UM and CT executions of every pair are requested as one bulk batch,
    so a parallel store fans the whole population out over its workers.
    """
    hps = list(hp_names) if hp_names is not None else app_names()
    bes = list(be_names) if be_names is not None else app_names()
    um, ct = UnmanagedPolicy(), CacheTakeoverPolicy()
    cells = []
    for hp in hps:
        for be in bes:
            cells.append((hp, be, n_be, um))
            cells.append((hp, be, n_be, ct))
    results = store.get_many(cells)
    # A quarantined cell (supervised store, on_failure="skip") yields None;
    # the pair is dropped rather than mis-classified on partial data.
    return [
        PairClass(
            hp_name=um_result.hp_name,
            be_name=um_result.be_name,
            um_slowdown=um_result.hp_slowdown,
            ct_slowdown=ct_result.hp_slowdown,
        )
        for um_result, ct_result in zip(results[::2], results[1::2])
        if um_result is not None and ct_result is not None
    ]


@dataclass(frozen=True)
class ShootoutRow:
    """One workload's head-to-head outcome across a policy roster.

    Per-policy metrics are tuples aligned with ``policies``; quarantined
    cells leave ``nan`` holes rather than dropping the row, so a partial
    shoot-out still reports the policies that did run.
    """

    hp_name: str
    be_name: str
    n_be: int
    policies: tuple[str, ...]
    hp_norm_ipcs: tuple[float, ...]
    efus: tuple[float, ...]

    @property
    def winner(self) -> str:
        """Policy with the best HP normalised IPC (ties: roster order)."""
        best = max(
            range(len(self.policies)),
            key=lambda i: (
                -float("inf")
                if self.hp_norm_ipcs[i] != self.hp_norm_ipcs[i]
                else self.hp_norm_ipcs[i]
            ),
        )
        return self.policies[best]


def shootout(
    store: ResultStore,
    pairs: Iterable[tuple[str, str]],
    policies=None,
    n_be: int = 9,
) -> list[ShootoutRow]:
    """Head-to-head: every pair under every policy, as one bulk batch.

    ``policies`` defaults to the full zoo roster
    (:func:`repro.experiments.grid.zoo_policies`); pass the paper trio to
    reproduce the original three-way comparison. All cells go to the
    store in one ``get_many`` request, so serial, multi-process and
    thread-pool stores produce identical rows.
    """
    from repro.experiments.grid import zoo_policies

    if policies is None:
        policies = zoo_policies()
    pair_list = list(pairs)
    cells = [
        (hp, be, n_be, policy)
        for hp, be in pair_list
        for policy in policies
    ]
    results = store.get_many(cells)
    names = tuple(p.name for p in policies)
    rows = []
    k = len(policies)
    for index, (hp, be) in enumerate(pair_list):
        chunk = results[index * k:(index + 1) * k]
        rows.append(
            ShootoutRow(
                hp_name=hp,
                be_name=be,
                n_be=n_be,
                policies=names,
                hp_norm_ipcs=tuple(
                    float("nan") if r is None else r.hp_norm_ipc
                    for r in chunk
                ),
                efus=tuple(
                    float("nan") if r is None else r.efu for r in chunk
                ),
            )
        )
    return rows


def representative_sample(
    classes: list[PairClass],
    n_ctf: int = 50,
    n_ctt: int = 70,
    seed: int | None = None,
) -> list[PairClass]:
    """The paper's 120-workload evaluation sample: 50 CT-F + 70 CT-T.

    Deterministic for a given seed; raises when a class is underpopulated
    (which would silently skew every downstream figure).
    """
    ctf = [c for c in classes if c.ct_favoured]
    ctt = [c for c in classes if not c.ct_favoured]
    if len(ctf) < n_ctf or len(ctt) < n_ctt:
        raise ValueError(
            f"population too small: {len(ctf)} CT-F / {len(ctt)} CT-T "
            f"(need {n_ctf}/{n_ctt})"
        )
    rng = make_rng(seed)
    pick_f = rng.choice(len(ctf), size=n_ctf, replace=False)
    pick_t = rng.choice(len(ctt), size=n_ctt, replace=False)
    sample = [ctf[i] for i in sorted(pick_f)] + [ctt[i] for i in sorted(pick_t)]
    return sample
