"""The shared evaluation campaign behind Figures 4-8.

The paper evaluates UM, CT and DICER on a representative sample of 120
multiprogrammed workloads (50 CT-F + 70 CT-T), varying the number of
employed cores from 2 to 10 (one core to HP, the rest to BEs). All of
Figures 4-8 are projections of that one grid of executions, so it is built
once here and the figure modules post-process it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cbp import CbpPolicy
from repro.core.lfoc import LfocPolicy
from repro.core.policies import (
    CacheTakeoverPolicy,
    DicerPolicy,
    Policy,
    StaticPolicy,
    UnmanagedPolicy,
)
from repro.experiments.classify import (
    PairClass,
    classify_all,
    representative_sample,
)
from repro.experiments.runner import PairResult
from repro.experiments.store import ResultStore
from repro.workloads.catalog import app_names

__all__ = [
    "GridPoint",
    "GridData",
    "default_policies",
    "zoo_policies",
    "grid_cells",
    "run_grid",
    "build_sample",
]

#: Core counts evaluated by the paper (x axes of Figures 6-8).
PAPER_CORES: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8, 9, 10)


def default_policies() -> list[Policy]:
    """The paper's three co-location policies."""
    return [UnmanagedPolicy(), CacheTakeoverPolicy(), DicerPolicy()]


def zoo_policies() -> list[Policy]:
    """The full shoot-out roster: paper trio + static + the policy zoo.

    ``S10`` is the even 10/10 split on the Table-1 20-way LLC — the
    natural static baseline between UM (no partition) and CT (HP takes
    all but one way). LFOC and CBP are the related-work controllers
    (:mod:`repro.core.lfoc`, :mod:`repro.core.cbp`); every name here is
    queueable through :func:`repro.experiments.queue.policy_from_name`.
    """
    return [
        UnmanagedPolicy(),
        CacheTakeoverPolicy(),
        StaticPolicy(10),
        DicerPolicy(),
        LfocPolicy(),
        CbpPolicy(),
    ]


@dataclass(frozen=True)
class GridPoint:
    """One executed cell of the evaluation grid."""

    workload: PairClass
    n_cores: int
    policy: str
    result: PairResult


@dataclass(frozen=True)
class GridData:
    """The full campaign: sample x cores x policies."""

    sample: tuple[PairClass, ...]
    cores: tuple[int, ...]
    policies: tuple[str, ...]
    points: tuple[GridPoint, ...]

    def select(
        self,
        *,
        policy: str | None = None,
        n_cores: int | None = None,
        workload_class: str | None = None,
    ) -> list[GridPoint]:
        """Grid points matching the given filters."""
        out = []
        for p in self.points:
            if policy is not None and p.policy != policy:
                continue
            if n_cores is not None and p.n_cores != n_cores:
                continue
            if (
                workload_class is not None
                and p.workload.label != workload_class
            ):
                continue
            out.append(p)
        return out


def build_sample(
    store: ResultStore,
    *,
    n_ctf: int = 50,
    n_ctt: int = 70,
    limit: int | None = None,
    seed: int | None = None,
) -> list[PairClass]:
    """Classify the population and draw the evaluation sample.

    ``limit`` truncates the catalog on both axes for quick runs; the sample
    sizes shrink proportionally when the limited population cannot supply
    50/70.
    """
    names = app_names()[:limit]
    classes = classify_all(store, hp_names=names, be_names=names)
    if limit is not None:
        n_f = len([c for c in classes if c.ct_favoured])
        n_t = len(classes) - n_f
        n_ctf = min(n_ctf, n_f)
        n_ctt = min(n_ctt, n_t)
    return representative_sample(classes, n_ctf=n_ctf, n_ctt=n_ctt, seed=seed)


def grid_cells(
    sample: list[PairClass],
    *,
    cores: tuple[int, ...] = PAPER_CORES,
    policies: list[Policy] | None = None,
) -> list[tuple[str, str, int, Policy]]:
    """The grid's store cells in canonical campaign order.

    Workload-major, then cores, then policies — the order
    :func:`run_grid` executes and the order campaign-queue producers
    enqueue, so queue sequence numbers match serial execution order.
    """
    if policies is None:
        policies = default_policies()
    return [
        (workload.hp_name, workload.be_name, n_cores - 1, policy)
        for workload in sample
        for n_cores in cores
        for policy in policies
    ]


def run_grid(
    store: ResultStore,
    sample: list[PairClass],
    *,
    cores: tuple[int, ...] = PAPER_CORES,
    policies: list[Policy] | None = None,
) -> GridData:
    """Execute the sample under every (core count, policy) combination.

    All cells go to the store as one bulk request, so a parallel store fans
    the whole campaign out over its workers; cell order (workload-major,
    then cores, then policies) matches the serial loop the bulk API
    replaced, keeping grids bit-identical across worker counts. On the
    serial path the executor additionally prewarms the campaign's solo
    profiles and each cell batch-solves its phase product / sampling grid
    through ``solve_steady_state_batch`` (see DESIGN.md §7) — same bits,
    far fewer scalar solver calls.
    """
    if policies is None:
        policies = default_policies()
    combos = [
        (workload, n_cores, policy)
        for workload in sample
        for n_cores in cores
        for policy in policies
    ]
    results = store.get_many(
        grid_cells(sample, cores=cores, policies=policies)
    )
    # A quarantined cell (supervised store, on_failure="skip") yields None
    # and simply leaves a hole in the grid; every extractor aggregates over
    # whatever points exist.
    points = [
        GridPoint(
            workload=workload,
            n_cores=n_cores,
            policy=policy.name,
            result=result,
        )
        for (workload, n_cores, policy), result in zip(combos, results)
        if result is not None
    ]
    return GridData(
        sample=tuple(sample),
        cores=tuple(cores),
        policies=tuple(p.name for p in policies),
        points=tuple(points),
    )
