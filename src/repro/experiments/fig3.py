"""Figure 3 — HP slowdown across all static LLC partitionings.

The paper's bandwidth-saturation case study: milc (HP) with nine gcc BEs.
Sweeping the static HP allocation from 1 to 19 ways shows (i) HP performs
best with a *small* allocation, (ii) CT's 19-way grab is detrimental, and
(iii) UM sits near the best static point. This figure motivates DICER's
allocation-sampling mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies import StaticPolicy, UnmanagedPolicy
from repro.experiments.runner import PairResult, run_pair
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.util.tables import format_table
from repro.workloads.mix import make_mix

__all__ = ["Fig3Data", "run_fig3", "render_fig3"]

#: The paper's case study names one HP (milc) and one BE (gcc); our catalog
#: equivalents.
DEFAULT_HP = "milc1"
DEFAULT_BE = "gcc_base6"


@dataclass(frozen=True)
class Fig3Data:
    """Static-sweep results for one (HP, BE) pair."""

    hp_name: str
    be_name: str
    #: HP ways -> result, plus the UM reference.
    static: dict[int, PairResult]
    unmanaged: PairResult

    @property
    def best_ways(self) -> int:
        """HP way count with the lowest HP slowdown."""
        return min(self.static, key=lambda w: self.static[w].hp_slowdown)

    @property
    def ct_ways(self) -> int:
        """The largest swept allocation (CT's choice)."""
        return max(self.static)


def run_fig3(
    hp_name: str = DEFAULT_HP,
    be_name: str = DEFAULT_BE,
    platform: PlatformConfig = TABLE1_PLATFORM,
    *,
    n_be: int = 9,
    ways: tuple[int, ...] | None = None,
) -> Fig3Data:
    """Run every static partition for one pair (plus UM)."""
    mix = make_mix(hp_name, be_name, n_be=n_be)
    if ways is None:
        ways = tuple(range(1, platform.llc_ways))
    static = {
        w: run_pair(mix, StaticPolicy(w), platform) for w in ways
    }
    um = run_pair(mix, UnmanagedPolicy(), platform)
    return Fig3Data(
        hp_name=hp_name, be_name=be_name, static=static, unmanaged=um
    )


def render_fig3(data: Fig3Data) -> str:
    """ASCII table of the static sweep plus the best/CT verdict."""
    rows = [
        [f"HP={w:2d} ways", r.hp_slowdown, r.be_norm_ipc, r.efu]
        for w, r in sorted(data.static.items())
    ]
    rows.append(
        [
            "UM",
            data.unmanaged.hp_slowdown,
            data.unmanaged.be_norm_ipc,
            data.unmanaged.efu,
        ]
    )
    best = data.best_ways
    note = (
        f"best static: {best} ways "
        f"(slowdown {data.static[best].hp_slowdown:.3f}); "
        f"CT ({data.ct_ways} ways) slowdown "
        f"{data.static[data.ct_ways].hp_slowdown:.3f}"
    )
    table = format_table(
        ["Configuration", "HP slowdown", "BE norm IPC", "EFU"],
        rows,
        title=(
            f"Figure 3: {data.hp_name} (HP) + 9x{data.be_name} (BEs), "
            "static LLC sweeps"
        ),
    )
    return f"{table}\n{note}"
