"""Figure 8 — geometric mean of SUCI for the joint optimisation problem.

SUCI (Equations 4-5) couples SLO conformance with effective utilisation:
zero on an SLA violation, ``EFU^lambda`` otherwise. Evaluated over the
sample for SLOs 80-95 %, cores 2-10 and lambda in {0.5, 1, 2}; the paper's
claim is that DICER dominates UM and CT across the whole grid.

Note on aggregation: a true geometric mean is zero the moment any workload
misses its SLO, so (as the paper's non-zero curves imply) zero SUCI values
are floored at a small epsilon before averaging — see
:func:`repro.util.stats.geomean_with_zeros`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.grid import GridData
from repro.metrics.slo import PAPER_SLOS
from repro.metrics.suci import PAPER_LAMBDAS, suci
from repro.util.stats import geomean_with_zeros
from repro.util.tables import format_table

__all__ = ["Fig8Data", "extract_fig8", "render_fig8"]


@dataclass(frozen=True)
class Fig8Data:
    """Geomean SUCI per (lambda, SLO, policy, cores)."""
    cores: tuple[int, ...]
    policies: tuple[str, ...]
    slos: tuple[float, ...]
    lambdas: tuple[float, ...]
    #: (lambda, slo, policy, n_cores) -> geomean SUCI.
    values: dict[tuple[float, float, str, int], float]


def extract_fig8(
    grid: GridData,
    slos: tuple[float, ...] = PAPER_SLOS,
    lambdas: tuple[float, ...] = PAPER_LAMBDAS,
) -> Fig8Data:
    """Aggregate the grid into Figure 8's series."""
    values: dict[tuple[float, float, str, int], float] = {}
    for lam in lambdas:
        for slo in slos:
            for policy in grid.policies:
                for n_cores in grid.cores:
                    points = grid.select(policy=policy, n_cores=n_cores)
                    if not points:
                        raise ValueError(
                            f"no grid points for {policy}@{n_cores}"
                        )
                    per_workload = [
                        suci(
                            p.result.hp_norm_ipc,
                            p.result.efu,
                            slo,
                            lam,
                        )
                        for p in points
                    ]
                    values[(lam, slo, policy, n_cores)] = geomean_with_zeros(
                        per_workload
                    )
    return Fig8Data(
        cores=grid.cores,
        policies=grid.policies,
        slos=slos,
        lambdas=lambdas,
        values=values,
    )


def render_fig8(data: Fig8Data) -> str:
    """One table per (lambda, SLO) panel."""
    sections = []
    for lam in data.lambdas:
        for slo in data.slos:
            rows = [
                [n_cores]
                + [
                    data.values[(lam, slo, p, n_cores)]
                    for p in data.policies
                ]
                for n_cores in data.cores
            ]
            sections.append(
                format_table(
                    ["Cores"] + list(data.policies),
                    rows,
                    title=(
                        f"Figure 8: geomean SUCI, SLO = {slo:.0%}, "
                        f"lambda = {lam:g}"
                    ),
                )
            )
    return "\n\n".join(sections)
