"""Figure 6 — geometric-mean effective utilisation vs employed cores.

UM yields the highest EFU (no resources withheld), CT collapses as BEs
multiply inside their single way, and DICER tracks UM closely by donating
HP's spare ways. One row per core count, one column per policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.grid import GridData
from repro.util.stats import geomean
from repro.util.tables import format_table

__all__ = ["Fig6Data", "extract_fig6", "render_fig6"]


@dataclass(frozen=True)
class Fig6Data:
    """Geomean EFU per (policy, core count)."""
    cores: tuple[int, ...]
    policies: tuple[str, ...]
    #: (policy, n_cores) -> geomean EFU.
    efu: dict[tuple[str, int], float]


def extract_fig6(grid: GridData) -> Fig6Data:
    """Aggregate the grid into Figure 6's series."""
    efu: dict[tuple[str, int], float] = {}
    for policy in grid.policies:
        for n_cores in grid.cores:
            points = grid.select(policy=policy, n_cores=n_cores)
            if not points:
                raise ValueError(f"no grid points for {policy}@{n_cores}")
            efu[(policy, n_cores)] = geomean(p.result.efu for p in points)
    return Fig6Data(cores=grid.cores, policies=grid.policies, efu=efu)


def render_fig6(data: Fig6Data) -> str:
    """One row per core count, one column per policy."""
    rows = [
        [n_cores] + [data.efu[(p, n_cores)] for p in data.policies]
        for n_cores in data.cores
    ]
    return format_table(
        ["Cores"] + list(data.policies),
        rows,
        title="Figure 6: geomean effective utilisation vs employed cores",
    )
