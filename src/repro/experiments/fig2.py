"""Figure 2 — cumulative distribution of HP's minimum LLC allocation.

For each application run in isolation, find the smallest number of ways at
which it achieves 90 %, 95 % and 99 % of the performance it gets with the
full 20-way LLC. The paper's reading: 50 % of applications hit 99 % of peak
with only 6 ways, and 90 % hit 90 % of peak with 5 ways — the headroom DICER
harvests for the BEs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.sim.solo import solo_ipc_at_ways
from repro.util.tables import format_table
from repro.workloads.catalog import app_names, get_app

__all__ = ["Fig2Data", "run_fig2", "render_fig2", "PAPER_TARGETS"]

#: The performance targets of the paper's three curves.
PAPER_TARGETS: tuple[float, ...] = (0.90, 0.95, 0.99)


@dataclass(frozen=True)
class Fig2Data:
    """Per-application minimum ways for each performance target."""

    #: target -> app name -> minimum ways (math.inf if unreachable).
    min_ways: dict[float, dict[str, float]]
    total_ways: int

    def cdf(self, target: float, ways: int) -> float:
        """Fraction of applications needing <= ``ways`` for ``target``."""
        per_app = self.min_ways[target]
        return sum(1 for w in per_app.values() if w <= ways) / len(per_app)


def run_fig2(
    platform: PlatformConfig = TABLE1_PLATFORM,
    *,
    limit: int | None = None,
    targets: tuple[float, ...] = PAPER_TARGETS,
    precision: str = "exact",
) -> Fig2Data:
    """Sweep each catalog application's solo IPC over 1..20 ways."""
    names = app_names()[:limit]
    min_ways: dict[float, dict[str, float]] = {t: {} for t in targets}
    for name in names:
        app = get_app(name)
        peak = solo_ipc_at_ways(
            app, platform, platform.llc_ways, precision=precision
        )
        for target in targets:
            needed = math.inf
            for ways in range(1, platform.llc_ways + 1):
                ipc = solo_ipc_at_ways(
                    app, platform, ways, precision=precision
                )
                if ipc >= target * peak:
                    needed = float(ways)
                    break
            min_ways[target][name] = needed
    return Fig2Data(min_ways=min_ways, total_ways=platform.llc_ways)


def render_fig2(data: Fig2Data) -> str:
    """The paper's three CDF curves, one row per allocated-way count."""
    targets = sorted(data.min_ways)
    rows = []
    for ways in range(1, data.total_ways + 1):
        rows.append(
            [f"{ways} ways"]
            + [100.0 * data.cdf(t, ways) for t in targets]
        )
    headers = ["Allocation"] + [f"{t:.0%} of peak (%)" for t in targets]
    n_apps = len(next(iter(data.min_ways.values())))
    return format_table(
        headers,
        rows,
        float_fmt=".1f",
        title=f"Figure 2: CDF of minimum LLC ways ({n_apps} applications)",
    )
