"""Shared campaign queue: many workers, one grid, every cell exactly once.

A paper-scale campaign is one big bag of independent cells. Within a
single process the :class:`~repro.experiments.store.ResultStore` already
fans cells out over a worker pool; this module scales the same bag
*across processes and hosts sharing a filesystem*: a :class:`
CampaignQueue` is an SQLite database of content-addressed cells that any
number of ``dicer-repro campaign --queue`` workers drain cooperatively,
each computing its claims through its own supervised store into a shared
SQLite result store (DESIGN.md §11).

Coordination is lease-based, the classic work-queue state machine::

    pending ──claim──► claimed ──mark_done──► done
       ▲                  │ │
       │                  │ └──mark_failed──► failed
       └────release───────┘
            (also: lease expiry ⇒ stealable by any worker)

* **Content-addressed keys** — a cell's key is the SHA-256 of its
  canonical ``(hp_name, be_name, n_be, policy)`` JSON, so enqueueing is
  idempotent (``INSERT OR IGNORE``): every worker can enqueue the full
  grid on startup and exactly one row per cell exists. ``seq`` records
  first-enqueue order (canonical grid order), so claims proceed in the
  same order a serial campaign would.
* **Leases + heartbeats** — a claim holds a wall-clock lease; the
  draining worker heartbeats as results arrive. A worker that dies
  (crash, OOM, lost host) simply stops heartbeating and its cells
  become stealable when the lease expires — no coordinator, no janitor
  process.
* **Work stealing** — ``claim()`` takes expired-lease cells as readily
  as pending ones (counting a steal on the cell), so a straggler or a
  corpse never strands work.
* **Exactly-once artefacts** — cells are pure and deterministic
  (DESIGN.md §9), so the rare double-execution race (steal from a
  slow-but-alive worker) is harmless: both writers upsert identical
  bytes into the shared store. "Exactly once" is a property of the
  *artefact*, not the execution.

:func:`drain` is the worker loop; :func:`render_monitor` renders live
progress for ``dicer-repro campaign monitor``.
"""

from __future__ import annotations

import hashlib
import json
import re
import sqlite3
import time
from contextlib import closing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.cbp import CbpPolicy
from repro.core.lfoc import LfocPolicy
from repro.core.policies import (
    CacheTakeoverPolicy,
    DicerPolicy,
    Policy,
    StaticPolicy,
    UnmanagedPolicy,
)
from repro.obs import get_event_log, get_registry
from repro.util.lease import LeaseClock, jittered_interval
from repro.util.tables import format_table

__all__ = [
    "CampaignQueue",
    "QueueSnapshot",
    "QueuedCell",
    "cell_key",
    "drain",
    "policy_from_name",
    "render_monitor",
]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    key           TEXT PRIMARY KEY,
    hp_name       TEXT NOT NULL,
    be_name       TEXT NOT NULL,
    n_be          INTEGER NOT NULL,
    policy        TEXT NOT NULL,
    seq           INTEGER NOT NULL,
    status        TEXT NOT NULL DEFAULT 'pending',
    owner         TEXT,
    lease_expires REAL,
    claims        INTEGER NOT NULL DEFAULT 0,
    steals        INTEGER NOT NULL DEFAULT 0,
    error         TEXT,
    enqueued_ts   REAL,
    claimed_ts    REAL,
    done_ts       REAL
);
CREATE INDEX IF NOT EXISTS cells_status_seq ON cells (status, seq);
"""

#: Seconds a writer waits on a locked queue before giving up.
_BUSY_TIMEOUT_S = 30.0

#: Process-wide lease clock: wall-clock-valued (cross-process comparable)
#: but monotonically non-decreasing, so a backwards NTP step can neither
#: un-expire a peer's lease nor prematurely expire one we are extending.
LEASE_CLOCK = LeaseClock()

_STATIC_NAME = re.compile(r"^S(?P<ways>\d+)(?:\+(?P<overlap>\d+)o)?$")


def policy_from_name(name: str) -> Policy:
    """Rebuild a :class:`Policy` from its display name.

    The queue stores policy *names* (``UM``, ``CT``, ``DICER``, ``LFOC``,
    ``CBP``, ``S<k>[+<o>o]``), the cross-process currency the store is
    keyed by; this inverts :attr:`Policy.name` for the policies campaigns
    run. Parameterised variants (ablation configs) are process-local and
    not queueable — they raise here.
    """
    if name == "UM":
        return UnmanagedPolicy()
    if name == "CT":
        return CacheTakeoverPolicy()
    if name == "DICER":
        return DicerPolicy()
    if name == "LFOC":
        return LfocPolicy()
    if name == "CBP":
        return CbpPolicy()
    match = _STATIC_NAME.match(name)
    if match:
        return StaticPolicy(
            int(match.group("ways")), int(match.group("overlap") or 0)
        )
    raise ValueError(
        f"cannot rebuild policy from name {name!r}; queueable policies "
        "are UM, CT, DICER, LFOC, CBP and S<k>[+<o>o]"
    )


def cell_key(hp_name: str, be_name: str, n_be: int, policy: str) -> str:
    """Content-addressed cell identity (SHA-256 of the canonical JSON)."""
    canonical = json.dumps(
        [hp_name, be_name, n_be, policy], separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class QueuedCell:
    """One queue row."""

    key: str
    hp_name: str
    be_name: str
    n_be: int
    policy: str  #: Policy *name*; rebuild with :func:`policy_from_name`.
    seq: int
    status: str = "pending"
    owner: str | None = None
    claims: int = 0
    steals: int = 0
    error: str | None = None

    def cell(self) -> tuple[str, str, int, Policy]:
        """This row as a store cell."""
        return (
            self.hp_name,
            self.be_name,
            self.n_be,
            policy_from_name(self.policy),
        )


@dataclass(frozen=True)
class QueueSnapshot:
    """Aggregate queue state at one instant (what the monitor renders)."""

    total: int = 0
    pending: int = 0
    claimed: int = 0
    done: int = 0
    failed: int = 0
    steals: int = 0  #: Total expired-lease takeovers so far.
    claims: int = 0  #: Total claim events (>= cells ever claimed).
    #: Per-owner (done, failed, currently-claimed) breakdown.
    owners: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    #: Wall-clock of the earliest claim and the latest completion.
    first_claimed_ts: float | None = None
    last_done_ts: float | None = None

    @property
    def terminal(self) -> bool:
        """Every cell is done or failed — the campaign is over."""
        return self.pending == 0 and self.claimed == 0

    @property
    def throughput(self) -> float | None:
        """Completed cells per second since the first claim, if underway."""
        if not self.done or self.first_claimed_ts is None:
            return None
        last = self.last_done_ts or self.first_claimed_ts
        elapsed = last - self.first_claimed_ts
        if elapsed <= 0:
            return None
        return self.done / elapsed

    @property
    def eta_s(self) -> float | None:
        """Seconds to drain the remaining cells at current throughput."""
        rate = self.throughput
        if rate is None or rate <= 0:
            return None
        return (self.pending + self.claimed) / rate


class CampaignQueue:
    """Lease-based shared work queue over one SQLite database.

    Parameters
    ----------
    path:
        The queue database. Opened per operation (fork-safe, no held
        handles); WAL journaling keeps concurrent workers from blocking
        each other except inside the short claim transactions.
    lease_s:
        Seconds a claim stays exclusive without a heartbeat. Must
        comfortably exceed the slowest single batch a worker drains;
        expiry makes the cell stealable, it never aborts the holder.
    """

    def __init__(self, path: Path | str, *, lease_s: float = 300.0) -> None:
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        self.path = Path(path)
        self.lease_s = lease_s

    def _connect(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_S)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    # -- producing -------------------------------------------------------

    def enqueue(self, cells: Iterable) -> int:
        """Idempotently add ``cells`` (store-cell tuples); return #new.

        Sequence numbers extend monotonically from the current maximum in
        first-enqueue order, so every worker enqueueing the same grid in
        the same canonical order yields one identical queue.
        """
        rows = []
        now = LEASE_CLOCK.now()
        for hp_name, be_name, n_be, policy in cells:
            name = getattr(policy, "name", str(policy))
            policy_from_name(name)  # refuse unqueueable policies early
            rows.append(
                (cell_key(hp_name, be_name, n_be, name), hp_name, be_name,
                 n_be, name, now)
            )
        with closing(self._connect()) as conn:
            with conn:
                conn.execute("BEGIN IMMEDIATE")
                base = conn.execute(
                    "SELECT COALESCE(MAX(seq), -1) FROM cells"
                ).fetchone()[0]
                before = conn.execute(
                    "SELECT COUNT(*) FROM cells"
                ).fetchone()[0]
                conn.executemany(
                    "INSERT OR IGNORE INTO cells "
                    "(key, hp_name, be_name, n_be, policy, seq, enqueued_ts) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    [
                        (key, hp, be, n_be, name, base + 1 + i, ts)
                        for i, (key, hp, be, n_be, name, ts) in enumerate(rows)
                    ],
                )
                added = conn.execute(
                    "SELECT COUNT(*) FROM cells"
                ).fetchone()[0] - before
        get_registry().counter("queue.enqueued").inc(added)
        log = get_event_log()
        if log.enabled and rows:
            log.emit(
                "queue.enqueue",
                path=str(self.path),
                offered=len(rows),
                added=added,
            )
        return added

    # -- claiming --------------------------------------------------------

    def claim(self, worker_id: str, limit: int = 1) -> list[QueuedCell]:
        """Atomically claim up to ``limit`` runnable cells for ``worker_id``.

        Runnable = pending, or claimed under an expired lease (a steal).
        Claims are taken in ``seq`` order inside one ``BEGIN IMMEDIATE``
        transaction, so two racing workers never claim the same cell.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        now = LEASE_CLOCK.now()
        claimed: list[QueuedCell] = []
        stolen = 0
        with closing(self._connect()) as conn:
            with conn:
                conn.execute("BEGIN IMMEDIATE")
                rows = conn.execute(
                    "SELECT key, hp_name, be_name, n_be, policy, seq, "
                    "       status, claims, steals "
                    "FROM cells WHERE status = 'pending' "
                    "   OR (status = 'claimed' AND lease_expires < ?) "
                    "ORDER BY seq LIMIT ?",
                    (now, limit),
                ).fetchall()
                for (key, hp, be, n_be, name, seq, status, claims,
                     steals) in rows:
                    steal = status == "claimed"
                    stolen += steal
                    conn.execute(
                        "UPDATE cells SET status = 'claimed', owner = ?, "
                        "lease_expires = ?, claims = claims + 1, "
                        "steals = steals + ?, claimed_ts = ?, error = NULL "
                        "WHERE key = ?",
                        (worker_id, now + self.lease_s, int(steal), now, key),
                    )
                    claimed.append(
                        QueuedCell(
                            key=key, hp_name=hp, be_name=be, n_be=n_be,
                            policy=name, seq=seq, status="claimed",
                            owner=worker_id, claims=claims + 1,
                            steals=steals + int(steal),
                        )
                    )
        registry = get_registry()
        registry.counter("queue.claimed").inc(len(claimed))
        if stolen:
            registry.counter("queue.steals").inc(stolen)
        log = get_event_log()
        if log.enabled and claimed:
            log.emit(
                "queue.claim",
                worker=worker_id,
                cells=len(claimed),
                stolen=stolen,
                first_seq=claimed[0].seq,
            )
        return claimed

    def heartbeat(self, worker_id: str, keys: Sequence[str]) -> None:
        """Extend ``worker_id``'s leases on ``keys`` (still-claimed only)."""
        if not keys:
            return
        now = LEASE_CLOCK.now()
        with closing(self._connect()) as conn:
            with conn:
                conn.executemany(
                    "UPDATE cells SET lease_expires = ? "
                    "WHERE key = ? AND owner = ? AND status = 'claimed'",
                    [(now + self.lease_s, key, worker_id) for key in keys],
                )

    # -- resolving -------------------------------------------------------

    def mark_done(self, worker_id: str, keys: Sequence[str]) -> int:
        """Move ``keys`` to ``done``; returns how many rows moved.

        Ownership is *not* required: if the lease was stolen mid-flight
        and the thief finished first, the row is already ``done`` and
        this is a no-op for it (both executions produced identical
        artefacts, see the module doc).
        """
        if not keys:
            return 0
        now = LEASE_CLOCK.now()
        with closing(self._connect()) as conn:
            with conn:
                moved = 0
                for key in keys:
                    moved += conn.execute(
                        "UPDATE cells SET status = 'done', done_ts = ?, "
                        "owner = ?, error = NULL "
                        "WHERE key = ? AND status != 'done'",
                        (now, worker_id, key),
                    ).rowcount
        get_registry().counter("queue.done").inc(moved)
        return moved

    def mark_failed(self, worker_id: str, key: str, error: str) -> None:
        """Move ``key`` to ``failed`` with a diagnostic (unless done)."""
        now = LEASE_CLOCK.now()
        with closing(self._connect()) as conn:
            with conn:
                conn.execute(
                    "UPDATE cells SET status = 'failed', done_ts = ?, "
                    "owner = ?, error = ? WHERE key = ? AND status != 'done'",
                    (now, worker_id, error[:500], key),
                )
        get_registry().counter("queue.failed").inc()
        log = get_event_log()
        if log.enabled:
            log.emit("queue.failed", worker=worker_id, key=key, error=error[:200])

    def release(self, worker_id: str, keys: Sequence[str]) -> None:
        """Return unprocessed claims to ``pending`` (clean worker exit)."""
        if not keys:
            return
        with closing(self._connect()) as conn:
            with conn:
                conn.executemany(
                    "UPDATE cells SET status = 'pending', owner = NULL, "
                    "lease_expires = NULL "
                    "WHERE key = ? AND owner = ? AND status = 'claimed'",
                    [(key, worker_id) for key in keys],
                )

    # -- observing -------------------------------------------------------

    def cells(self) -> list[QueuedCell]:
        """Every queue row in ``seq`` order."""
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT key, hp_name, be_name, n_be, policy, seq, status, "
                "       owner, claims, steals, error "
                "FROM cells ORDER BY seq"
            ).fetchall()
        return [QueuedCell(*row) for row in rows]

    def snapshot(self) -> QueueSnapshot:
        """Aggregate counts for progress reporting."""
        with closing(self._connect()) as conn:
            by_status = dict(
                conn.execute(
                    "SELECT status, COUNT(*) FROM cells GROUP BY status"
                ).fetchall()
            )
            totals = conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(steals), 0), "
                "       COALESCE(SUM(claims), 0), MIN(claimed_ts), "
                "       MAX(done_ts) FROM cells"
            ).fetchone()
            owners = {
                owner: (done, failed, claimed)
                for owner, done, failed, claimed in conn.execute(
                    "SELECT owner, "
                    "  SUM(status = 'done'), SUM(status = 'failed'), "
                    "  SUM(status = 'claimed') "
                    "FROM cells WHERE owner IS NOT NULL GROUP BY owner "
                    "ORDER BY owner"
                )
            }
        total, steals, claims, first_claimed, last_done = totals
        return QueueSnapshot(
            total=total,
            pending=by_status.get("pending", 0),
            claimed=by_status.get("claimed", 0),
            done=by_status.get("done", 0),
            failed=by_status.get("failed", 0),
            steals=steals,
            claims=claims,
            owners=owners,
            first_claimed_ts=first_claimed,
            last_done_ts=last_done,
        )


def drain(
    store,
    queue: CampaignQueue,
    worker_id: str,
    *,
    claim_batch: int = 8,
    poll_s: float = 1.0,
    max_polls: int | None = None,
    **run_kwargs,
) -> dict[str, int]:
    """Worker loop: claim → compute through ``store`` → resolve, until dry.

    Each claimed batch runs as one supervised bulk request; every freshly
    computed result heartbeats the batch's leases, the store checkpoints
    before any cell is marked ``done`` (results are durable first, so a
    crash between save and mark costs a recompute, never a lost result),
    and quarantined cells become ``failed`` rows carrying the error.

    When nothing is claimable but other workers still hold live leases,
    the worker naps ``poll_s`` and retries — a dying peer's lease will
    expire and be stolen. ``max_polls`` bounds those naps (for tests);
    ``None`` waits as long as the queue is non-terminal. Returns this
    worker's tally: ``{"done": ..., "failed": ..., "batches": ...,
    "stolen": ...}``.

    Heartbeats are throttled to roughly a third of the lease (so a
    healthy worker refreshes well before expiry without writing the
    queue on *every* result) and jittered deterministically per worker
    id, so a fleet started in lockstep spreads its heartbeat writes
    instead of stampeding the shared database.
    """
    tally = {"done": 0, "failed": 0, "batches": 0, "stolen": 0}
    polls = 0
    beat_every_s = jittered_interval(queue.lease_s / 3.0, worker_id)
    last_beat = time.monotonic()
    while True:
        batch = queue.claim(worker_id, claim_batch)
        if not batch:
            snap = queue.snapshot()
            if snap.terminal:
                break
            polls += 1
            if max_polls is not None and polls > max_polls:
                break
            time.sleep(poll_s)
            continue
        polls = 0
        tally["batches"] += 1
        tally["stolen"] += sum(
            1 for q in batch if q.steals and q.owner == worker_id
        )
        keys = [q.key for q in batch]
        failed_before = len(store.failures)

        def pulse(index, cell, result, _keys=keys):
            nonlocal last_beat
            now_mono = time.monotonic()
            if now_mono - last_beat < beat_every_s:
                return
            last_beat = now_mono
            queue.heartbeat(worker_id, _keys)

        try:
            store.get_many(
                [q.cell() for q in batch], on_result=pulse, **run_kwargs
            )
        except Exception as exc:
            # Abort-mode store: the condemned cell fails, the rest of the
            # claim goes back to pending for other workers, and the error
            # propagates to the caller (completed cells were checkpointed
            # by the store before the raise).
            failure = getattr(exc, "failure", None)
            if failure is not None:
                bad = cell_key(
                    failure.hp_name, failure.be_name, failure.n_be,
                    failure.policy,
                )
                queue.mark_failed(worker_id, bad, str(exc))
                keys = [k for k in keys if k != bad]
            queue.release(worker_id, keys)
            raise
        # Durability before visibility: everything computed in this batch
        # is persisted before the queue admits it is done.
        store.save()
        failed_keys = {
            cell_key(f.hp_name, f.be_name, f.n_be, f.policy): f
            for f in store.failures[failed_before:]
        }
        done_keys = []
        for q in batch:
            failure = failed_keys.get(q.key)
            if failure is not None:
                last = failure.last_error
                queue.mark_failed(
                    worker_id,
                    q.key,
                    f"{last.error_type}: {last.message}" if last else "failed",
                )
                tally["failed"] += 1
            else:
                done_keys.append(q.key)
        tally["done"] += queue.mark_done(worker_id, done_keys)
    log = get_event_log()
    if log.enabled:
        log.emit("queue.drained", worker=worker_id, **tally)
    return tally


def _fmt_duration(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


def render_monitor(snapshot: QueueSnapshot, *, path: str = "") -> str:
    """Render one queue snapshot as the ``campaign monitor`` report."""
    pct = 100.0 * snapshot.done / snapshot.total if snapshot.total else 0.0
    rows = [
        ["cells", snapshot.total],
        ["pending", snapshot.pending],
        ["claimed", snapshot.claimed],
        ["done", f"{snapshot.done} ({pct:.1f}%)"],
        ["failed", snapshot.failed],
        ["claims", snapshot.claims],
        ["steals", snapshot.steals],
        [
            "throughput",
            f"{snapshot.throughput:.2f} cells/s"
            if snapshot.throughput
            else "-",
        ],
        [
            "eta",
            "drained"
            if snapshot.terminal
            else (
                _fmt_duration(snapshot.eta_s)
                if snapshot.eta_s is not None
                else "-"
            ),
        ],
    ]
    title = "Campaign queue" + (f": {path}" if path else "")
    out = format_table(["metric", "value"], rows, title=title)
    if snapshot.owners:
        out += "\n\n" + format_table(
            ["worker", "done", "failed", "claimed"],
            [
                [owner, done, failed, claimed]
                for owner, (done, failed, claimed) in snapshot.owners.items()
            ],
            title="Workers",
        )
    return out
