"""Parallel campaign execution engine.

Every campaign in the reproduction — the 3481-pair Figure 1 / CT-F/CT-T
classification sweeps and the 120-workload × cores × policies grid behind
Figures 4-8 — is a batch of *independent* ``run_pair`` executions. One cell
is one ``(hp_name, be_name, n_be, policy)`` tuple; cells share nothing at
runtime (each builds its mix from the catalog and solves its own fixed
points), so fanning them out over worker processes is embarrassingly
parallel.

Since the supervision rework the actual dispatch lives in
:class:`~repro.experiments.supervise.SupervisedExecutor`: individually
submitted futures under a supervisor loop that survives worker crashes,
hangs and poison cells. :class:`ParallelExecutor` is the strict facade —
no retries, no timeout, first failure aborts with the original exception
— preserving the pre-supervision contract for callers that want a plain
``list[PairResult]``.

Determinism is the load-bearing property: ``run_pair`` is a pure function
of its cell, and results are emitted in submission order regardless of
completion order — so a parallel campaign is bit-identical to a serial
one at any worker count (enforced by tests). ``n_workers=1`` bypasses the
pool entirely and runs the exact in-process serial path.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable

from repro.core.policies import Policy
from repro.experiments.runner import PairResult, run_pair
from repro.experiments.supervise import (
    CampaignError,
    SupervisedExecutor,
    SuperviseConfig,
)
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.workloads.mix import make_mix

__all__ = ["Cell", "ParallelExecutor", "run_cell"]

#: One campaign cell: (hp_name, be_name, n_be, policy).
Cell = tuple[str, str, int, Policy]


def run_cell(
    platform: PlatformConfig,
    cell: Cell,
    run_kwargs: dict | None = None,
) -> PairResult:
    """Execute one campaign cell (the unit of work the pool distributes)."""
    hp_name, be_name, n_be, policy = cell
    return run_pair(
        make_mix(hp_name, be_name, n_be=n_be),
        policy,
        platform,
        **(run_kwargs or {}),
    )


def _prewarm_solo_profiles(
    platform: PlatformConfig,
    cells: list[Cell],
    run_kwargs: dict | None = None,
) -> None:
    """Batch-solve the solo baselines every cell will normalise against.

    Serial path only: one :func:`~repro.sim.solo.prewarm_profiles` call
    feeds the distinct apps of the whole campaign into the vectorised
    solver, instead of each cell cold-solving its own pair of profiles.
    Apps missing from the catalog (tests with synthetic names) are simply
    skipped — the cell itself will raise the right error. Honours the
    campaign's solver ``precision`` (from ``run_kwargs``) so the prewarmed
    profiles are the ones the cells will actually look up.
    """
    from repro.sim.kernels import use_kernel
    from repro.sim.solo import prewarm_profiles
    from repro.workloads.catalog import catalog

    precision = (run_kwargs or {}).get("precision", "exact")
    kernel = (run_kwargs or {}).get("kernel", "auto")
    apps = catalog()
    names: list[str] = []
    seen: set[str] = set()
    for hp_name, be_name, _n_be, _policy in cells:
        for name in (hp_name, be_name):
            if name not in seen:
                seen.add(name)
                names.append(name)
    with use_kernel(kernel):
        prewarm_profiles(
            [apps[name] for name in names if name in apps],
            platform,
            precision=precision,
        )


def _prewarm_phase_products(
    platform: PlatformConfig,
    cells: list[Cell],
    run_kwargs: dict | None = None,
    max_points_per_cell: int = 64,
) -> int:
    """Fuse the phase-product operating points of many cells into one batch.

    Fast-mode serial campaigns only. Each cell's execution starts from its
    policy's *initial* partition and (absent MBA throttling) visits exactly
    the phase cross product — the same points
    :meth:`~repro.sim.server.Server.prefetch_phase_product` would solve one
    cell at a time. Aggregating them across the whole campaign hands the
    vectorised fast kernel one wide fused batch instead of hundreds of
    narrow ones, which is where its throughput comes from (DESIGN.md §10).

    A no-op for ``precision="exact"`` (the scalar-parity path keeps its
    historical per-cell solve pattern) and for cells whose mix or policy
    setup fails — those cells surface their own errors when they run.
    Returns the number of operating points submitted.
    """
    from repro.sim.contention import GLOBAL_STEADY_CACHE
    from repro.sim.kernels import use_kernel
    from repro.sim.partition import PartitionSpec
    from repro.sim.server import phase_product_points

    precision = (run_kwargs or {}).get("precision", "exact")
    kernel = (run_kwargs or {}).get("kernel", "auto")
    if precision != "fast":
        return 0
    points: list[tuple] = []
    seen: set[tuple] = set()
    for hp_name, be_name, n_be, policy in cells:
        cell_key = (hp_name, be_name, n_be, policy.name)
        if cell_key in seen:
            continue
        seen.add(cell_key)
        try:
            mix = make_mix(hp_name, be_name, n_be=n_be)
            models = mix.apps()
            allocation = policy.fresh().setup(platform.llc_ways)
            partition = (
                allocation.to_partition(len(models))
                if allocation is not None
                else PartitionSpec.unmanaged(len(models), platform.llc_ways)
            )
        except Exception:
            continue
        points.extend(
            phase_product_points(models, partition, None, max_points_per_cell)
        )
    if points:
        with use_kernel(kernel):
            GLOBAL_STEADY_CACHE.solve_many(platform, points, precision="fast")
    return len(points)


class ParallelExecutor:
    """Fan campaign cells out over worker processes, in deterministic order.

    A strict facade over :class:`~repro.experiments.supervise.
    SupervisedExecutor`: no retries, no per-cell timeout, and the first
    cell failure aborts the batch by re-raising the original exception —
    the historical all-or-nothing contract. Campaigns that want retry /
    timeout / quarantine semantics use ``SupervisedExecutor`` directly
    (:class:`~repro.experiments.store.ResultStore` does, when configured).

    Parameters
    ----------
    n_workers:
        Worker process count. ``None`` or ``0`` auto-detects from the CPU
        count; ``1`` runs everything serially in-process (no pool, no
        pickling — the exact pre-parallel execution path).
    chunk_size:
        Retained for API compatibility; the supervised engine submits
        cells individually (per-cell futures are what make timeouts and
        crash attribution possible), so this is accepted and ignored.
    label:
        Optional tag for this executor's ``campaign.batch`` telemetry
        events (see :class:`SupervisedExecutor`).
    pool:
        ``"processes"`` (default) or ``"threads"`` — forwarded to
        :class:`SupervisedExecutor` (thread mode shares the in-process
        solver caches; built for the GIL-releasing compiled kernel).
    """

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        chunk_size: int | None = None,
        label: str | None = None,
        pool: str = "processes",
    ) -> None:
        if n_workers is None or n_workers <= 0:
            n_workers = os.cpu_count() or 1
        self.n_workers = n_workers
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.label = label
        self.pool = pool

    def run(
        self,
        cells: Iterable[Cell],
        platform: PlatformConfig = TABLE1_PLATFORM,
        *,
        run_kwargs: dict | None = None,
        on_result: Callable[[int, Cell, PairResult], None] | None = None,
    ) -> list[PairResult]:
        """Execute every cell; results align index-for-index with ``cells``.

        ``on_result(index, cell, result)`` fires as each result arrives (in
        submission order) — the hook :class:`~repro.experiments.store.
        ResultStore` uses to merge worker results back into the parent
        cache and checkpoint long campaigns for mid-grid resume.
        """
        executor = SupervisedExecutor(
            self.n_workers,
            config=SuperviseConfig(),
            label=self.label,
            pool=self.pool,
        )
        try:
            outcome = executor.run(
                cells,
                platform,
                run_kwargs=run_kwargs,
                on_result=on_result,
            )
        except CampaignError as err:
            if err.cause is not None:
                raise err.cause from None
            raise
        return outcome.results
