"""Parallel campaign execution engine.

Every campaign in the reproduction — the 3481-pair Figure 1 / CT-F/CT-T
classification sweeps and the 120-workload × cores × policies grid behind
Figures 4-8 — is a batch of *independent* ``run_pair`` executions. One cell
is one ``(hp_name, be_name, n_be, policy)`` tuple; cells share nothing at
runtime (each builds its mix from the catalog and solves its own fixed
points), so fanning them out over a :class:`~concurrent.futures.
ProcessPoolExecutor` is embarrassingly parallel.

Determinism is the load-bearing property: ``run_pair`` is a pure function
of its cell, results are returned in submission order (``Executor.map``
preserves ordering), and chunking only affects scheduling — so a parallel
campaign is bit-identical to a serial one regardless of worker count
(enforced by tests). ``n_workers=1`` bypasses the pool entirely and runs
the exact in-process serial path.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable

from repro.core.policies import Policy
from repro.experiments.runner import PairResult, run_pair
from repro.obs import get_event_log, get_registry
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM
from repro.workloads.mix import make_mix

__all__ = ["Cell", "ParallelExecutor", "run_cell"]

#: One campaign cell: (hp_name, be_name, n_be, policy).
Cell = tuple[str, str, int, Policy]


def run_cell(
    platform: PlatformConfig,
    cell: Cell,
    run_kwargs: dict | None = None,
) -> PairResult:
    """Execute one campaign cell (the unit of work the pool distributes)."""
    hp_name, be_name, n_be, policy = cell
    return run_pair(
        make_mix(hp_name, be_name, n_be=n_be),
        policy,
        platform,
        **(run_kwargs or {}),
    )


def _pool_worker(payload: tuple) -> PairResult:
    # Module-level so it pickles by reference; the payload carries the
    # (small, frozen) platform and policy along with the cell names.
    platform, cell, run_kwargs = payload
    return run_cell(platform, cell, run_kwargs)


def _prewarm_solo_profiles(
    platform: PlatformConfig, cells: list[Cell]
) -> None:
    """Batch-solve the solo baselines every cell will normalise against.

    Serial path only: one :func:`~repro.sim.solo.prewarm_profiles` call
    feeds the distinct apps of the whole campaign into the vectorised
    solver, instead of each cell cold-solving its own pair of profiles.
    Apps missing from the catalog (tests with synthetic names) are simply
    skipped — the cell itself will raise the right error.
    """
    from repro.sim.solo import prewarm_profiles
    from repro.workloads.catalog import catalog

    apps = catalog()
    names: list[str] = []
    seen: set[str] = set()
    for hp_name, be_name, _n_be, _policy in cells:
        for name in (hp_name, be_name):
            if name not in seen:
                seen.add(name)
                names.append(name)
    prewarm_profiles(
        [apps[name] for name in names if name in apps], platform
    )


class ParallelExecutor:
    """Fan campaign cells out over worker processes, in deterministic order.

    Parameters
    ----------
    n_workers:
        Worker process count. ``None`` or ``0`` auto-detects from the CPU
        count; ``1`` runs everything serially in-process (no pool, no
        pickling — the exact pre-parallel execution path).
    chunk_size:
        Cells handed to a worker per dispatch. ``None`` auto-sizes to about
        four chunks per worker: large enough to amortise IPC overhead on
        sub-millisecond cells, small enough to keep the tail balanced.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        chunk_size: int | None = None,
    ) -> None:
        if n_workers is None or n_workers <= 0:
            n_workers = os.cpu_count() or 1
        self.n_workers = n_workers
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size

    def _auto_chunk(self, n_cells: int) -> int:
        return max(1, n_cells // (self.n_workers * 4))

    def run(
        self,
        cells: Iterable[Cell],
        platform: PlatformConfig = TABLE1_PLATFORM,
        *,
        run_kwargs: dict | None = None,
        on_result: Callable[[int, Cell, PairResult], None] | None = None,
    ) -> list[PairResult]:
        """Execute every cell; results align index-for-index with ``cells``.

        ``on_result(index, cell, result)`` fires as each result arrives (in
        submission order) — the hook :class:`~repro.experiments.store.
        ResultStore` uses to merge worker results back into the parent
        cache and checkpoint long campaigns for mid-grid resume.
        """
        cells = list(cells)
        results: list[PairResult] = []
        registry = get_registry()
        t0 = time.perf_counter() if registry.enabled else 0.0
        if self.n_workers == 1 or len(cells) <= 1:
            workers_used = 1
            _prewarm_solo_profiles(platform, cells)
            for index, cell in enumerate(cells):
                if registry.enabled:
                    with registry.histogram("parallel.cell_seconds").time():
                        result = run_cell(platform, cell, run_kwargs)
                else:
                    result = run_cell(platform, cell, run_kwargs)
                registry.counter("parallel.cells").inc()
                results.append(result)
                if on_result is not None:
                    on_result(index, cell, result)
        else:
            workers_used = min(self.n_workers, len(cells))
            payloads = [(platform, cell, run_kwargs) for cell in cells]
            chunk = self.chunk_size or self._auto_chunk(len(cells))
            with ProcessPoolExecutor(max_workers=workers_used) as pool:
                for index, result in enumerate(
                    pool.map(_pool_worker, payloads, chunksize=chunk)
                ):
                    registry.counter("parallel.cells").inc()
                    results.append(result)
                    if on_result is not None:
                        on_result(index, cells[index], result)
        if registry.enabled and cells:
            elapsed = time.perf_counter() - t0
            registry.histogram("parallel.batch_seconds").observe(elapsed)
            registry.gauge("parallel.n_workers").set(workers_used)
            throughput = len(cells) / elapsed if elapsed > 0 else 0.0
            registry.gauge("parallel.cells_per_second").set(throughput)
            registry.gauge("parallel.cells_per_worker_second").set(
                throughput / workers_used
            )
            log = get_event_log()
            if log.enabled:
                log.emit(
                    "campaign.batch",
                    cells=len(cells),
                    workers=workers_used,
                    seconds=round(elapsed, 6),
                    cells_per_second=round(throughput, 3),
                )
        return results
