"""Supervised campaign execution: crash isolation, retry, quarantine.

The paper-scale campaigns (3481 UM/CT pairs behind Figure 1, the
120-workload grid behind Figures 4-8) are hours of embarrassingly
parallel work, and the executor used to drive them through a single
``pool.map`` — one worker segfault/OOM raised ``BrokenProcessPool`` and
discarded every in-flight cell. :class:`SupervisedExecutor` replaces
that all-or-nothing dispatch with individually submitted futures under
a supervisor loop:

* **per-cell wall-clock timeouts** — a wedged worker is detected, its
  process group killed, and the cell retried (pool mode only; a serial
  in-process cell cannot be preempted);
* **bounded retry with deterministic exponential backoff** — no jitter,
  so a retry schedule is bit-reproducible;
* **pool rebuild + requeue** — ``BrokenProcessPool`` costs only the
  in-flight cells one (re-)attempt, never the campaign;
* **crash attribution by isolation** — when several cells were in
  flight during a pool break the culprit is unknown, so the suspects
  are re-run *solo* (uncounted "pool_crash" strike); a solo crash is
  exactly attributed and counts against the retry budget. Innocent
  bystanders are never quarantined for a neighbour's segfault;
* **poison-cell quarantine** — a cell that exhausts its retries yields
  a structured :class:`FailedCell` (exception, traceback, full attempt
  history) instead of killing the campaign; ``on_failure="skip"``
  surfaces partial results plus a failure manifest, ``"abort"`` raises
  :class:`CampaignError` after everything already computed has been
  handed to ``on_result``.

Determinism stays load-bearing: cells are pure, results are emitted to
``on_result`` in submission order (completions are buffered and released
contiguously), so a chaos-ridden campaign that ultimately succeeds is
bit-identical to a clean serial run — the determinism audit asserts
this. All recovery actions emit ``supervise.*`` events/counters through
:mod:`repro.obs`. Worker-fault injection for tests lives in
:mod:`repro.experiments.chaos`.

``pool="threads"`` (DESIGN.md §12) swaps the process pool for a
``ThreadPoolExecutor``: no spawn cost, no pickling, and every worker
shares the in-process ``GLOBAL_STEADY_CACHE`` and ResultStore — the mode
built for the GIL-releasing compiled solver kernel. Retry, backoff,
quarantine and ordered emission are identical; what threads cannot do is
crash isolation (a segfault takes the whole process, so there is no
``pool_crash``/solo-rerun machinery) or hard preemption — an expired
``cell_timeout_s`` *abandons* the future (strike + retry/quarantine as
usual, late result discarded) but the wedged thread occupies its worker
slot until it returns. Chaos kinds ``crash`` and ``hang`` are
process-pool-only for the same reasons.
"""

from __future__ import annotations

import heapq
import time
import traceback as _traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable

from repro.experiments.chaos import maybe_inject
from repro.experiments.runner import PairResult
from repro.obs import get_event_log, get_registry
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM

__all__ = [
    "AttemptRecord",
    "CampaignError",
    "CampaignOutcome",
    "FailedCell",
    "SuperviseConfig",
    "SupervisedExecutor",
    "backoff_schedule",
]

#: Attempt outcomes that consume retry budget ("pool_crash" / "pool_lost"
#: are unattributed collateral and do not).
_COUNTED_OUTCOMES = frozenset({"error", "timeout", "crash", "garbage"})

#: Cap on stored traceback text per attempt.
_MAX_TRACEBACK_CHARS = 4000


@dataclass(frozen=True)
class SuperviseConfig:
    """Retry / timeout / failure policy for a supervised campaign.

    The default is *strict*: no retries, no timeout, abort on the first
    failure — the exact semantics of the pre-supervision executor.

    Parameters
    ----------
    max_retries:
        Counted failures a cell may survive beyond its first attempt.
        ``0`` fails a cell on its first attributed failure. Unattributed
        pool breaks ("pool_crash"/"pool_lost" strikes) never consume
        budget — attribution is established by an isolated re-run first.
    cell_timeout_s:
        Wall-clock budget per attempt. Enforced in pool mode by killing
        the worker processes; unenforceable (and ignored, with a
        ``supervise.timeout_unenforced`` event) on the serial path.
    backoff_base_s / backoff_factor / backoff_cap_s:
        Deterministic exponential backoff before retry *k* (1-based):
        ``min(cap, base * factor**(k-1))``. No jitter — retried cells
        are pure, so a deterministic schedule keeps campaigns
        bit-reproducible.
    on_failure:
        ``"abort"`` raises :class:`CampaignError` on the first
        quarantined cell (after flushing completed results to
        ``on_result``); ``"skip"`` records a :class:`FailedCell` and
        carries on, returning partial results plus a failure manifest.
    """

    max_retries: int = 0
    cell_timeout_s: float | None = None
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap_s: float = 30.0
    on_failure: str = "abort"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError(
                f"cell_timeout_s must be > 0, got {self.cell_timeout_s}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.on_failure not in ("abort", "skip"):
            raise ValueError(
                f"on_failure must be 'abort' or 'skip', got "
                f"{self.on_failure!r}"
            )

    def backoff_delay(self, retry: int) -> float:
        """Delay before retry ``retry`` (1-based) of a cell."""
        if retry < 1:
            return 0.0
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor ** (retry - 1),
        )


def backoff_schedule(config: SuperviseConfig) -> tuple[float, ...]:
    """The full deterministic delay schedule, one entry per retry."""
    return tuple(
        config.backoff_delay(k) for k in range(1, config.max_retries + 1)
    )


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt at one cell, successful or not."""

    attempt: int  #: 1-based attempt number.
    outcome: str  #: ok | error | timeout | crash | garbage | pool_crash | pool_lost
    error_type: str = ""
    message: str = ""
    traceback: str = ""
    duration_s: float = 0.0
    #: Whether this attempt consumed retry budget (unattributed pool
    #: breaks are recorded but uncounted).
    counted: bool = True


@dataclass(frozen=True)
class FailedCell:
    """A quarantined cell: retries exhausted, campaign carried on."""

    index: int  #: Position in the submitted batch.
    hp_name: str
    be_name: str
    n_be: int
    policy: str
    attempts: tuple[AttemptRecord, ...] = ()
    #: Solver precision the cell was running under when it was condemned
    #: ("exact" or "fast") — fast-math failures must be re-triageable.
    precision: str = "exact"

    @property
    def last_error(self) -> AttemptRecord | None:
        """The final counted failure (what actually condemned the cell)."""
        for record in reversed(self.attempts):
            if record.counted and record.outcome != "ok":
                return record
        return self.attempts[-1] if self.attempts else None

    def describe(self) -> str:
        """One-line manifest entry."""
        last = self.last_error
        detail = (
            f"{last.outcome}"
            + (f": {last.error_type}: {last.message}" if last.error_type else "")
            if last
            else "unknown"
        )
        return (
            f"{self.hp_name}+{self.n_be}x{self.be_name}/{self.policy} "
            f"after {len(self.attempts)} attempt(s) — {detail}"
        )


class CampaignError(RuntimeError):
    """Raised in ``on_failure="abort"`` mode when a cell is condemned."""

    def __init__(
        self,
        message: str,
        *,
        failure: FailedCell | None = None,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message)
        self.failure = failure
        self.cause = cause


@dataclass
class CampaignOutcome:
    """What a supervised campaign produced.

    ``results`` aligns index-for-index with the submitted cells; a
    quarantined cell leaves ``None`` at its position and a
    :class:`FailedCell` in ``failures`` (only possible with
    ``on_failure="skip"``).
    """

    results: list[PairResult | None]
    failures: list[FailedCell] = field(default_factory=list)
    n_retries: int = 0
    n_pool_rebuilds: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


# Sentinel for not-yet-resolved slots.
_PENDING = object()


def _format_exception(exc: BaseException) -> str:
    """Render an exception (local or unpickled-from-a-worker) compactly."""
    cause = getattr(exc, "__cause__", None)
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        text = str(cause)
    else:
        text = "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
    return text[-_MAX_TRACEBACK_CHARS:]


def _supervised_worker(payload: tuple) -> PairResult:
    """Run one cell in a worker, under the process's chaos config."""
    from repro.experiments.parallel import run_cell

    platform, cell, run_kwargs, index1, attempt = payload
    garbage = maybe_inject(index1, attempt)
    if garbage is not None:
        return garbage
    return run_cell(platform, cell, run_kwargs)


class _CellState:
    """Supervisor-side bookkeeping for one cell."""

    __slots__ = ("index", "cell", "attempts", "counted", "solo")

    def __init__(self, index: int, cell) -> None:
        self.index = index
        self.cell = cell
        self.attempts: list[AttemptRecord] = []
        self.counted = 0
        self.solo = False  # must run alone for crash attribution

    @property
    def next_attempt(self) -> int:
        return len(self.attempts) + 1


class SupervisedExecutor:
    """Fan campaign cells out over crash-isolated worker processes.

    Parameters
    ----------
    n_workers:
        Worker process count. ``None``/``0`` auto-detects from the CPU
        count; ``1`` runs serially in-process (retry/quarantine still
        apply, but crashes and hangs cannot be isolated).
    config:
        The :class:`SuperviseConfig` retry/timeout/failure policy
        (default: strict — no retries, abort on first failure).
    label:
        Optional tag stamped on this executor's ``campaign.batch``
        telemetry events, so batches from several cooperating processes
        (campaign-queue workers) stay attributable in one shared
        telemetry stream.
    pool:
        ``"processes"`` (default) fans out over crash-isolated worker
        processes; ``"threads"`` over a thread pool sharing the
        in-process solver caches — same retry/timeout/quarantine
        semantics minus crash attribution and hard preemption (see the
        module docstring). Threads only beat the GIL when the solve
        itself releases it, i.e. with the ``compiled`` kernel.
    """

    #: Hard cap on pool rebuilds, as a termination backstop: every
    #: rebuild either resolves suspects or consumes counted retry
    #: budget, so a healthy supervisor never approaches this.
    _MAX_REBUILDS_BASE = 8

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        config: SuperviseConfig | None = None,
        label: str | None = None,
        pool: str = "processes",
    ) -> None:
        import os

        if n_workers is None or n_workers <= 0:
            n_workers = os.cpu_count() or 1
        if pool not in ("processes", "threads"):
            raise ValueError(
                f"pool must be 'processes' or 'threads', got {pool!r}"
            )
        self.n_workers = n_workers
        self.config = config if config is not None else SuperviseConfig()
        self.label = label
        self.pool = pool

    # -- public API ----------------------------------------------------------

    def run(
        self,
        cells: Iterable,
        platform: PlatformConfig = TABLE1_PLATFORM,
        *,
        run_kwargs: dict | None = None,
        on_result: Callable[[int, tuple, PairResult], None] | None = None,
    ) -> CampaignOutcome:
        """Execute every cell under supervision.

        ``on_result(index, cell, result)`` fires in submission order (a
        completion behind an unresolved cell is buffered until the gap
        closes), which keeps downstream checkpoint artefacts
        byte-identical across worker counts and chaos schedules.
        """
        cells = list(cells)
        registry = get_registry()
        t0 = time.perf_counter() if registry.enabled else 0.0
        use_pool = self.n_workers > 1 and (
            len(cells) > 1 or self.config.cell_timeout_s is not None
        )
        if use_pool:
            workers_used = min(self.n_workers, max(1, len(cells)))
            if self.pool == "threads":
                outcome = self._run_threads(
                    cells, platform, run_kwargs, on_result, workers_used
                )
            else:
                outcome = self._run_pool(
                    cells, platform, run_kwargs, on_result, workers_used
                )
        else:
            workers_used = 1
            outcome = self._run_serial(cells, platform, run_kwargs, on_result)
        if registry.enabled and cells:
            elapsed = time.perf_counter() - t0
            registry.histogram("parallel.batch_seconds").observe(elapsed)
            registry.gauge("parallel.n_workers").set(workers_used)
            throughput = len(cells) / elapsed if elapsed > 0 else 0.0
            registry.gauge("parallel.cells_per_second").set(throughput)
            registry.gauge("parallel.cells_per_worker_second").set(
                throughput / workers_used
            )
            log = get_event_log()
            if log.enabled:
                extra = {"label": self.label} if self.label else {}
                log.emit(
                    "campaign.batch",
                    cells=len(cells),
                    workers=workers_used,
                    pool=self.pool if use_pool else "serial",
                    seconds=round(elapsed, 6),
                    cells_per_second=round(throughput, 3),
                    retries=outcome.n_retries,
                    pool_rebuilds=outcome.n_pool_rebuilds,
                    failed_cells=len(outcome.failures),
                    **extra,
                )
        return outcome

    # -- shared plumbing -----------------------------------------------------

    @staticmethod
    def _failed_cell(
        state: _CellState, run_kwargs: dict | None = None
    ) -> FailedCell:
        hp_name, be_name, n_be, policy = state.cell
        return FailedCell(
            index=state.index,
            hp_name=hp_name,
            be_name=be_name,
            n_be=n_be,
            policy=getattr(policy, "name", str(policy)),
            attempts=tuple(state.attempts),
            precision=(run_kwargs or {}).get("precision", "exact"),
        )

    def _record_attempt(
        self,
        state: _CellState,
        outcome: str,
        *,
        exc: BaseException | None = None,
        duration_s: float = 0.0,
    ) -> AttemptRecord:
        counted = outcome in _COUNTED_OUTCOMES
        record = AttemptRecord(
            attempt=state.next_attempt,
            outcome=outcome,
            error_type=type(exc).__name__ if exc is not None else "",
            message=str(exc)[:500] if exc is not None else "",
            traceback=_format_exception(exc) if exc is not None else "",
            duration_s=duration_s,
            counted=counted,
        )
        state.attempts.append(record)
        if counted:
            state.counted += 1
        return record

    @staticmethod
    def _emit_recovery(event: str, state: _CellState, **payload) -> None:
        registry = get_registry()
        registry.counter(f"supervise.{event}").inc()
        log = get_event_log()
        if log.enabled:
            hp_name, be_name, n_be, policy = state.cell
            log.emit(
                f"supervise.{event}",
                cell=f"{hp_name}+{n_be}x{be_name}",
                policy=getattr(policy, "name", str(policy)),
                index=state.index,
                attempt=len(state.attempts),
                **payload,
            )

    # -- serial path ---------------------------------------------------------

    def _run_serial(
        self,
        cells: list,
        platform: PlatformConfig,
        run_kwargs: dict | None,
        on_result,
    ) -> CampaignOutcome:
        from repro.experiments.parallel import (
            _prewarm_phase_products,
            _prewarm_solo_profiles,
            run_cell,
        )

        config = self.config
        registry = get_registry()
        if config.cell_timeout_s is not None:
            log = get_event_log()
            if log.enabled:
                log.emit(
                    "supervise.timeout_unenforced",
                    timeout_s=config.cell_timeout_s,
                    reason="serial in-process execution cannot be preempted",
                )
        _prewarm_solo_profiles(platform, cells, run_kwargs)
        # Fast-mode campaigns additionally fuse every cell's phase-product
        # operating points into one wide batch up front (no-op for exact).
        _prewarm_phase_products(platform, cells, run_kwargs)
        outcome = CampaignOutcome(results=[None] * len(cells))
        for index, cell in enumerate(cells):
            state = _CellState(index, cell)
            while True:
                attempt_t0 = time.perf_counter()
                try:
                    if registry.enabled:
                        with registry.histogram("parallel.cell_seconds").time():
                            result = maybe_inject(index + 1, state.next_attempt)
                            if result is None:
                                result = run_cell(platform, cell, run_kwargs)
                    else:
                        result = maybe_inject(index + 1, state.next_attempt)
                        if result is None:
                            result = run_cell(platform, cell, run_kwargs)
                    error: BaseException | None = None
                except Exception as caught:
                    error = caught
                    result = None
                duration = time.perf_counter() - attempt_t0

                if error is None and isinstance(result, PairResult):
                    self._record_attempt(state, "ok", duration_s=duration)
                    registry.counter("parallel.cells").inc()
                    registry.counter("supervise.cells_ok").inc()
                    outcome.results[index] = result
                    if on_result is not None:
                        on_result(index, cell, result)
                    break

                kind = "error" if error is not None else "garbage"
                self._record_attempt(
                    state, kind, exc=error, duration_s=duration
                )
                if state.counted <= config.max_retries:
                    outcome.n_retries += 1
                    delay = config.backoff_delay(state.counted)
                    self._emit_recovery(
                        "retry", state, outcome=kind, delay_s=delay
                    )
                    if delay > 0:
                        time.sleep(delay)
                    continue

                failure = self._failed_cell(state, run_kwargs)
                self._emit_recovery("quarantine", state, outcome=kind)
                if config.on_failure == "abort":
                    raise CampaignError(
                        f"campaign aborted: cell {failure.describe()}",
                        failure=failure,
                        cause=error,
                    ) from error
                outcome.failures.append(failure)
                break
        return outcome

    # -- pool path -----------------------------------------------------------

    def _run_pool(
        self,
        cells: list,
        platform: PlatformConfig,
        run_kwargs: dict | None,
        on_result,
        workers: int,
    ) -> CampaignOutcome:
        config = self.config
        registry = get_registry()
        states = [_CellState(i, cell) for i, cell in enumerate(cells)]
        resolved: list = [_PENDING] * len(cells)
        outcome = CampaignOutcome(results=[None] * len(cells))
        next_emit = 0
        unresolved = len(cells)
        max_rebuilds = self._MAX_REBUILDS_BASE + 2 * len(cells)

        # Scheduling structures: indices eligible now (normal / solo), and
        # a delay heap of (not_before, index) entries serving backoff.
        ready: list[int] = list(range(len(cells)))
        heapq.heapify(ready)
        solo_ready: list[int] = []
        delayed: list[tuple[float, int]] = []

        inflight: dict[Future, int] = {}
        deadlines: dict[Future, float] = {}
        submit_times: dict[Future, float] = {}
        timed_out_pending: set[int] = set()
        deliberate_kill = False
        abort: CampaignError | None = None

        pool = ProcessPoolExecutor(max_workers=workers)

        def emit_ready() -> None:
            nonlocal next_emit
            while next_emit < len(cells) and resolved[next_emit] is not _PENDING:
                value = resolved[next_emit]
                if isinstance(value, PairResult):
                    outcome.results[next_emit] = value
                    if on_result is not None:
                        on_result(next_emit, cells[next_emit], value)
                next_emit += 1

        def flush_completed() -> None:
            # Abort path: everything resolved-ok but buffered behind a gap
            # still reaches on_result (in index order) before the raise.
            nonlocal next_emit
            for index in range(next_emit, len(cells)):
                value = resolved[index]
                if isinstance(value, PairResult):
                    outcome.results[index] = value
                    if on_result is not None:
                        on_result(index, cells[index], value)
            next_emit = len(cells)

        def resolve_ok(state: _CellState, result: PairResult, duration: float) -> None:
            nonlocal unresolved
            self._record_attempt(state, "ok", duration_s=duration)
            registry.counter("parallel.cells").inc()
            registry.counter("supervise.cells_ok").inc()
            if registry.enabled:
                registry.histogram("parallel.cell_seconds").observe(duration)
            resolved[state.index] = result
            unresolved -= 1
            emit_ready()

        def quarantine(state: _CellState, exc: BaseException | None) -> None:
            nonlocal unresolved, abort
            failure = self._failed_cell(state, run_kwargs)
            self._emit_recovery(
                "quarantine",
                state,
                outcome=failure.last_error.outcome if failure.last_error else "?",
            )
            if config.on_failure == "abort":
                abort = CampaignError(
                    f"campaign aborted: cell {failure.describe()}",
                    failure=failure,
                    cause=exc,
                )
                return
            outcome.failures.append(failure)
            resolved[state.index] = failure
            unresolved -= 1
            emit_ready()

        def requeue(state: _CellState, *, delay: float, solo: bool) -> None:
            if solo:
                state.solo = True
            if delay > 0:
                heapq.heappush(
                    delayed, (time.monotonic() + delay, state.index)
                )
            elif state.solo:
                heapq.heappush(solo_ready, state.index)
            else:
                heapq.heappush(ready, state.index)

        def strike(
            state: _CellState,
            kind: str,
            *,
            exc: BaseException | None = None,
            duration: float = 0.0,
            solo: bool = False,
        ) -> None:
            record = self._record_attempt(
                state, kind, exc=exc, duration_s=duration
            )
            if not record.counted:
                self._emit_recovery("retry", state, outcome=kind, delay_s=0.0)
                requeue(state, delay=0.0, solo=solo)
                return
            if state.counted <= config.max_retries:
                outcome.n_retries += 1
                delay = config.backoff_delay(state.counted)
                self._emit_recovery(
                    "retry", state, outcome=kind, delay_s=delay
                )
                requeue(state, delay=delay, solo=solo)
                return
            quarantine(state, exc)

        def submit(state: _CellState) -> None:
            payload = (
                platform,
                state.cell,
                run_kwargs,
                state.index + 1,
                state.next_attempt,
            )
            fut = pool.submit(_supervised_worker, payload)
            inflight[fut] = state.index
            submit_times[fut] = time.monotonic()
            if config.cell_timeout_s is not None:
                deadlines[fut] = time.monotonic() + config.cell_timeout_s

        def rebuild_pool() -> None:
            nonlocal pool
            outcome.n_pool_rebuilds += 1
            if outcome.n_pool_rebuilds > max_rebuilds:
                raise CampaignError(
                    f"campaign aborted: worker pool broke "
                    f"{outcome.n_pool_rebuilds} times (limit {max_rebuilds})"
                )
            registry.counter("supervise.pool_rebuilds").inc()
            log = get_event_log()
            if log.enabled:
                log.emit(
                    "supervise.pool_rebuild",
                    rebuilds=outcome.n_pool_rebuilds,
                    workers=workers,
                )
            try:
                pool.shutdown(wait=False)
            except Exception:
                pass
            pool = ProcessPoolExecutor(max_workers=workers)

        def handle_broken(broken: list[int]) -> None:
            nonlocal deliberate_kill
            if deliberate_kill:
                # We killed the pool ourselves over a timeout: the
                # culprit(s) are known, bystanders are innocent.
                for index in broken:
                    state = states[index]
                    if index in timed_out_pending:
                        self._emit_recovery(
                            "timeout",
                            state,
                            timeout_s=config.cell_timeout_s,
                        )
                        strike(
                            state,
                            "timeout",
                            exc=TimeoutError(
                                f"cell exceeded {config.cell_timeout_s}s"
                            ),
                        )
                    else:
                        strike(state, "pool_lost")
                deliberate_kill = False
            elif len(broken) == 1:
                # Exactly one cell was running: attribution is certain.
                state = states[broken[0]]
                registry.counter("supervise.crashes").inc()
                strike(
                    state,
                    "crash",
                    exc=BrokenProcessPool(
                        "worker process died while running this cell"
                    ),
                )
            else:
                # Unknown culprit: every suspect re-runs solo so the
                # next crash is exactly attributed; these strikes are
                # recorded but uncounted.
                for index in broken:
                    strike(states[index], "pool_crash", solo=True)
            timed_out_pending.clear()
            if abort is None:
                rebuild_pool()

        try:
            while unresolved and abort is None:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _due, index = heapq.heappop(delayed)
                    if states[index].solo:
                        heapq.heappush(solo_ready, index)
                    else:
                        heapq.heappush(ready, index)

                # Refill: normal cells fill the pool; a solo suspect only
                # launches when nothing else is in flight, and blocks
                # further submissions until it resolves.
                solo_inflight = any(
                    states[i].solo for i in inflight.values()
                )
                while not solo_inflight:
                    if ready and len(inflight) < workers:
                        submit(states[heapq.heappop(ready)])
                    elif solo_ready and not inflight:
                        submit(states[heapq.heappop(solo_ready)])
                        solo_inflight = True
                    else:
                        break

                if not inflight:
                    if delayed:
                        time.sleep(
                            min(0.05, max(0.0, delayed[0][0] - time.monotonic()))
                        )
                        continue
                    if ready or solo_ready:
                        continue  # submission blocked only transiently
                    break  # nothing left anywhere

                tick = 0.25
                if deadlines:
                    tick = min(
                        tick,
                        max(0.0, min(deadlines.values()) - time.monotonic()),
                    )
                if delayed:
                    tick = min(
                        tick, max(0.0, delayed[0][0] - time.monotonic())
                    )
                done, _pending = wait(
                    set(inflight), timeout=tick, return_when=FIRST_COMPLETED
                )

                broken: list[int] = []

                def consume(fut: Future) -> None:
                    index = inflight.pop(fut)
                    deadlines.pop(fut, None)
                    duration = time.monotonic() - submit_times.pop(fut)
                    state = states[index]
                    exc = fut.exception()
                    if exc is None:
                        result = fut.result()
                        if isinstance(result, PairResult):
                            resolve_ok(state, result, duration)
                        else:
                            registry.counter("supervise.garbage").inc()
                            strike(
                                state,
                                "garbage",
                                exc=TypeError(
                                    f"worker returned "
                                    f"{type(result).__name__!s}, "
                                    f"not PairResult"
                                ),
                                duration=duration,
                            )
                    elif isinstance(exc, BrokenProcessPool):
                        broken.append(index)
                    else:
                        registry.counter("supervise.errors").inc()
                        strike(state, "error", exc=exc, duration=duration)

                for fut in done:
                    consume(fut)
                if broken:
                    # The pool is dead: every remaining in-flight future
                    # is doomed. Drain them all now so one break is one
                    # rebuild (a completion that raced the break is
                    # still honoured as a normal result).
                    while inflight:
                        leftovers, _ = wait(set(inflight), timeout=10.0)
                        if not leftovers:
                            break
                        for fut in leftovers:
                            consume(fut)
                    handle_broken(broken)
                    continue

                # Deadline sweep: kill the pool under a wedged worker.
                if deadlines:
                    now = time.monotonic()
                    expired = [
                        fut
                        for fut, deadline in deadlines.items()
                        if now >= deadline and not fut.done()
                    ]
                    if expired:
                        deliberate_kill = True
                        for fut in expired:
                            timed_out_pending.add(inflight[fut])
                        processes = getattr(pool, "_processes", None) or {}
                        for proc in list(processes.values()):
                            proc.kill()
        finally:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

        if abort is not None:
            flush_completed()
            if abort.cause is not None:
                raise abort from abort.cause
            raise abort
        return outcome

    # -- thread path ---------------------------------------------------------

    def _run_threads(
        self,
        cells: list,
        platform: PlatformConfig,
        run_kwargs: dict | None,
        on_result,
        workers: int,
    ) -> CampaignOutcome:
        """GIL-sharing variant of :meth:`_run_pool` (DESIGN.md §12).

        Same supervisor loop minus everything that needs process
        isolation: no ``BrokenProcessPool`` handling, no solo-rerun crash
        attribution, no pool rebuilds. Timeouts are *soft* — an expired
        future is abandoned (struck and retried/quarantined exactly like
        a pool-mode timeout, its eventual result discarded), but the
        wedged thread keeps occupying a worker slot until it returns, so
        a campaign full of genuine hangs degrades to serial throughput
        rather than being killed. Worker threads share the process's
        solver caches, which is the point: the prewarmed
        ``GLOBAL_STEADY_CACHE`` serves every thread, and the compiled
        kernel solves with the GIL released.
        """
        from repro.experiments.parallel import (
            _prewarm_phase_products,
            _prewarm_solo_profiles,
            run_cell,
        )

        config = self.config
        registry = get_registry()
        states = [_CellState(i, cell) for i, cell in enumerate(cells)]
        resolved: list = [_PENDING] * len(cells)
        outcome = CampaignOutcome(results=[None] * len(cells))
        next_emit = 0
        unresolved = len(cells)

        # Shared-cache prewarm (the serial path does the same): solo
        # profiles and fused phase products are solved once up front in
        # the supervisor thread, so worker threads start from a hot
        # in-process memo instead of racing each other on cold points.
        _prewarm_solo_profiles(platform, cells, run_kwargs)
        _prewarm_phase_products(platform, cells, run_kwargs)

        ready: list[int] = list(range(len(cells)))
        heapq.heapify(ready)
        delayed: list[tuple[float, int]] = []

        inflight: dict[Future, int] = {}
        deadlines: dict[Future, float] = {}
        submit_times: dict[Future, float] = {}
        #: Futures struck for timeout whose threads are still running;
        #: their late results (or errors) are discarded on completion.
        abandoned: set[Future] = set()
        abort: CampaignError | None = None

        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="supervise"
        )

        def work(index1: int, attempt: int, cell) -> PairResult:
            garbage = maybe_inject(index1, attempt)
            if garbage is not None:
                return garbage
            return run_cell(platform, cell, run_kwargs)

        def emit_ready() -> None:
            nonlocal next_emit
            while next_emit < len(cells) and resolved[next_emit] is not _PENDING:
                value = resolved[next_emit]
                if isinstance(value, PairResult):
                    outcome.results[next_emit] = value
                    if on_result is not None:
                        on_result(next_emit, cells[next_emit], value)
                next_emit += 1

        def flush_completed() -> None:
            nonlocal next_emit
            for index in range(next_emit, len(cells)):
                value = resolved[index]
                if isinstance(value, PairResult):
                    outcome.results[index] = value
                    if on_result is not None:
                        on_result(index, cells[index], value)
            next_emit = len(cells)

        def resolve_ok(state: _CellState, result: PairResult, duration: float) -> None:
            nonlocal unresolved
            self._record_attempt(state, "ok", duration_s=duration)
            registry.counter("parallel.cells").inc()
            registry.counter("supervise.cells_ok").inc()
            if registry.enabled:
                registry.histogram("parallel.cell_seconds").observe(duration)
            resolved[state.index] = result
            unresolved -= 1
            emit_ready()

        def quarantine(state: _CellState, exc: BaseException | None) -> None:
            nonlocal unresolved, abort
            failure = self._failed_cell(state, run_kwargs)
            self._emit_recovery(
                "quarantine",
                state,
                outcome=failure.last_error.outcome if failure.last_error else "?",
            )
            if config.on_failure == "abort":
                abort = CampaignError(
                    f"campaign aborted: cell {failure.describe()}",
                    failure=failure,
                    cause=exc,
                )
                return
            outcome.failures.append(failure)
            resolved[state.index] = failure
            unresolved -= 1
            emit_ready()

        def strike(
            state: _CellState,
            kind: str,
            *,
            exc: BaseException | None = None,
            duration: float = 0.0,
        ) -> None:
            self._record_attempt(state, kind, exc=exc, duration_s=duration)
            if state.counted <= config.max_retries:
                outcome.n_retries += 1
                delay = config.backoff_delay(state.counted)
                self._emit_recovery(
                    "retry", state, outcome=kind, delay_s=delay
                )
                if delay > 0:
                    heapq.heappush(
                        delayed, (time.monotonic() + delay, state.index)
                    )
                else:
                    heapq.heappush(ready, state.index)
                return
            quarantine(state, exc)

        def submit(state: _CellState) -> None:
            fut = pool.submit(
                work, state.index + 1, state.next_attempt, state.cell
            )
            inflight[fut] = state.index
            submit_times[fut] = time.monotonic()
            if config.cell_timeout_s is not None:
                deadlines[fut] = time.monotonic() + config.cell_timeout_s

        def consume(fut: Future) -> None:
            index = inflight.pop(fut)
            deadlines.pop(fut, None)
            duration = time.monotonic() - submit_times.pop(fut)
            state = states[index]
            exc = fut.exception()
            if exc is None:
                result = fut.result()
                if isinstance(result, PairResult):
                    resolve_ok(state, result, duration)
                else:
                    registry.counter("supervise.garbage").inc()
                    strike(
                        state,
                        "garbage",
                        exc=TypeError(
                            f"worker returned "
                            f"{type(result).__name__!s}, not PairResult"
                        ),
                        duration=duration,
                    )
            else:
                registry.counter("supervise.errors").inc()
                strike(state, "error", exc=exc, duration=duration)

        try:
            while unresolved and abort is None:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _due, index = heapq.heappop(delayed)
                    heapq.heappush(ready, index)

                # Refill. Abandoned futures still hold worker slots, so
                # count them against capacity: submitting past the pool
                # width would only queue work behind the wedged threads.
                while ready and len(inflight) + len(abandoned) < workers:
                    submit(states[heapq.heappop(ready)])

                if not inflight:
                    if abandoned and unresolved:
                        # Every worker slot is wedged: nothing can make
                        # progress until one of them returns. Block on
                        # the abandoned set rather than spinning.
                        done, _ = wait(set(abandoned), timeout=0.25)
                        abandoned.difference_update(done)
                        continue
                    if delayed:
                        time.sleep(
                            min(0.05, max(0.0, delayed[0][0] - time.monotonic()))
                        )
                        continue
                    if ready:
                        continue
                    break

                tick = 0.25
                if deadlines:
                    tick = min(
                        tick,
                        max(0.0, min(deadlines.values()) - time.monotonic()),
                    )
                if delayed:
                    tick = min(
                        tick, max(0.0, delayed[0][0] - time.monotonic())
                    )
                done, _pending = wait(
                    set(inflight), timeout=tick, return_when=FIRST_COMPLETED
                )
                for fut in done:
                    consume(fut)

                # Reap any abandoned threads that have since returned
                # (their results are discarded — the strike already
                # resolved the cell's fate).
                abandoned.difference_update(
                    {fut for fut in abandoned if fut.done()}
                )

                # Deadline sweep: soft timeout — abandon the future and
                # strike the cell; the thread cannot be killed.
                if deadlines:
                    now = time.monotonic()
                    expired = [
                        fut
                        for fut, deadline in deadlines.items()
                        if now >= deadline and not fut.done()
                    ]
                    for fut in expired:
                        index = inflight.pop(fut)
                        deadlines.pop(fut, None)
                        duration = time.monotonic() - submit_times.pop(fut)
                        abandoned.add(fut)
                        state = states[index]
                        self._emit_recovery(
                            "timeout",
                            state,
                            timeout_s=config.cell_timeout_s,
                            enforcement="abandoned",
                        )
                        strike(
                            state,
                            "timeout",
                            exc=TimeoutError(
                                f"cell exceeded {config.cell_timeout_s}s "
                                f"(thread abandoned, not killed)"
                            ),
                            duration=duration,
                        )
        finally:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

        if abort is not None:
            flush_completed()
            if abort.cause is not None:
                raise abort from abort.cause
            raise abort
        return outcome


def strict_config() -> SuperviseConfig:
    """The pre-supervision semantics: no retries, abort on first failure."""
    return SuperviseConfig()


def resilient_config(
    *,
    max_retries: int = 2,
    cell_timeout_s: float | None = None,
    on_failure: str = "abort",
) -> SuperviseConfig:
    """The CLI's campaign defaults (see ``--max-retries`` and friends)."""
    return replace(
        SuperviseConfig(),
        max_retries=max_retries,
        cell_timeout_s=cell_timeout_s,
        on_failure=on_failure,
    )
