"""Figure 1 — cumulative distribution of HP slowdown under UM and CT.

Reproduces the paper's motivation figure: all 59 × 59 = 3481 pairs, one HP
plus nine BEs, measured as HP slowdown relative to isolated execution. The
paper's reading: under UM ~64 % of workloads sit around 1.1x and ~2.5 %
beyond 2x; CT shifts the whole distribution left.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.store import ResultStore
from repro.core.policies import CacheTakeoverPolicy, UnmanagedPolicy
from repro.util.stats import fraction_below
from repro.util.tables import format_table
from repro.workloads.catalog import app_names

__all__ = ["Fig1Data", "run_fig1", "render_fig1", "PAPER_X_GRID"]

#: The slowdown thresholds on the paper's x axis.
PAPER_X_GRID: tuple[float, ...] = (
    1.0, 1.1, 1.2, 1.3, 1.5, 1.7, 2.0, 3.0, 4.0, 5.0,
)


@dataclass(frozen=True)
class Fig1Data:
    """Slowdowns per policy across the pair population."""

    um_slowdowns: tuple[float, ...]
    ct_slowdowns: tuple[float, ...]

    def cdf_row(self, threshold: float) -> tuple[float, float]:
        """(UM, CT) fraction of workloads at or below ``threshold``."""
        return (
            fraction_below(self.um_slowdowns, threshold),
            fraction_below(self.ct_slowdowns, threshold),
        )


def run_fig1(
    store: ResultStore,
    *,
    n_be: int = 9,
    limit_hp: int | None = None,
    limit_be: int | None = None,
) -> Fig1Data:
    """Execute the Figure 1 campaign.

    ``limit_hp``/``limit_be`` truncate the catalog for quick runs (tests and
    default benchmark mode); ``None`` runs the full 3481 pairs.
    """
    hps = app_names()[:limit_hp]
    bes = app_names()[:limit_be]
    um_policy, ct_policy = UnmanagedPolicy(), CacheTakeoverPolicy()
    cells = []
    for hp in hps:
        for be in bes:
            cells.append((hp, be, n_be, um_policy))
            cells.append((hp, be, n_be, ct_policy))
    results = store.get_many(cells)
    # Quarantined cells (supervised store, on_failure="skip") yield None;
    # drop the whole pair so the UM and CT populations stay aligned.
    pairs = [
        (um, ct)
        for um, ct in zip(results[::2], results[1::2])
        if um is not None and ct is not None
    ]
    return Fig1Data(
        um_slowdowns=tuple(um.hp_slowdown for um, _ct in pairs),
        ct_slowdowns=tuple(ct.hp_slowdown for _um, ct in pairs),
    )


def render_fig1(data: Fig1Data) -> str:
    """The CDF series the paper plots, as a table (one row per x point)."""
    rows = []
    for x in PAPER_X_GRID:
        um_frac, ct_frac = data.cdf_row(x)
        rows.append([f"<= {x:.1f}x", 100.0 * um_frac, 100.0 * ct_frac])
    return format_table(
        ["HP slowdown", "UM (% workloads)", "CT (% workloads)"],
        rows,
        float_fmt=".1f",
        title=(
            f"Figure 1: CDF of HP slowdown with 9 BEs "
            f"({len(data.um_slowdowns)} workloads)"
        ),
    )
