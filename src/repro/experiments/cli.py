"""Command-line entry point: ``dicer-repro <experiment> [options]``.

Regenerates any of the paper's tables/figures from the terminal::

    dicer-repro table1
    dicer-repro fig1 --limit 12        # truncated population, quick
    dicer-repro fig3
    dicer-repro fig5 --limit 10
    dicer-repro fig7                   # full 120-workload grid (minutes)
    dicer-repro ablation-alpha

``--limit N`` truncates the catalog to its first N entries on both axes,
trading population size for wall-clock time; omit it for the paper-scale
campaign.

Telemetry (see :mod:`repro.obs` and DESIGN.md §6): any experiment run
with ``--metrics out.jsonl`` records controller decisions, solver-cache
effectiveness and campaign throughput into one JSONL file; ``dicer-repro
report --metrics out.jsonl`` renders it. ``dicer-repro run --hp A --be B
[--policy DICER]`` executes a single consolidation pair, the smallest
unit that produces a full decision trace.

Result caches are pluggable (``--backend``, DESIGN.md §11): ``file`` is
the checksummed atomic-rename JSON artefact, ``sqlite`` a WAL database
with incremental checkpoints and concurrent-writer safety; ``auto``
(default) resolves from the ``--cache`` path. Multi-process campaigns
use the ``campaign`` subcommand::

    dicer-repro campaign --queue q.db --store results.db --limit 10 &
    dicer-repro campaign --queue q.db --store results.db --limit 10 &
    dicer-repro campaign monitor q.db --interval 5

Each worker idempotently enqueues the grid, then drains the shared
queue (lease/heartbeat claims, work-stealing of dead workers' leases)
through its own supervised store into the shared SQLite result store;
``campaign monitor`` renders live progress from queue state and the
shared telemetry stream.

The ``serve`` subcommand drives the :mod:`repro.serve` control plane
(DESIGN.md §14)::

    dicer-repro serve loadgen --out events.jsonl --events 1000
    dicer-repro serve chaos --base events.jsonl --out chaos.jsonl --nodes 3
    dicer-repro serve run --events chaos.jsonl --snapshot snap.json
    dicer-repro serve monitor snap.json --interval 2

``serve run`` replays the event stream through a supervised multi-node
daemon (SIGTERM checkpoints; rerunning resumes); ``serve monitor``
renders live placement/health/throughput from the snapshot.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from repro import obs
from repro.experiments.ablation import (
    sweep_alpha,
    sweep_bw_threshold,
    sweep_classification_threshold,
    sweep_cooldown,
    sweep_noise_robustness,
    sweep_phase_detector,
    sweep_phase_threshold,
    sweep_sampling_grid,
)
from repro.experiments.fig1 import render_fig1, run_fig1
from repro.experiments.fig2 import render_fig2, run_fig2
from repro.experiments.fig3 import render_fig3, run_fig3
from repro.experiments.fig4 import extract_fig4, render_fig4
from repro.experiments.fig5 import extract_fig5, render_fig5
from repro.experiments.fig6 import extract_fig6, render_fig6
from repro.experiments.fig7 import extract_fig7, render_fig7
from repro.experiments.fig8 import extract_fig8, render_fig8
from repro.core.cbp import CbpPolicy
from repro.core.lfoc import LfocPolicy
from repro.core.policies import (
    CacheTakeoverPolicy,
    DicerPolicy,
    UnmanagedPolicy,
)
from repro.core.trace_tools import summarise_trace
from repro.experiments.grid import build_sample, run_grid
from repro.experiments.store import ResultStore
from repro.experiments.supervise import CampaignError, SuperviseConfig
from repro.experiments.table1 import render_table1
from repro.sim.contention import GLOBAL_STEADY_CACHE
from repro.util.tables import format_table

__all__ = ["main"]

GRID_FIGURES = {
    "fig4": (extract_fig4, render_fig4),
    "fig5": (extract_fig5, render_fig5),
    "fig6": (extract_fig6, render_fig6),
    "fig7": (extract_fig7, render_fig7),
    "fig8": (extract_fig8, render_fig8),
}

EXPERIMENTS = (
    ["table1", "fig1", "fig2", "fig3"]
    + sorted(GRID_FIGURES)
    + [
        "ablation-bw",
        "ablation-alpha",
        "ablation-phase",
        "ablation-grid",
        "ablation-cooldown",
        "ablation-classify",
        "ablation-noise",
        "ablation-detector",
        "recommend",
        "run",
        "report",
    ]
)

#: Policies selectable for ``dicer-repro run``.
RUN_POLICIES = {
    "UM": UnmanagedPolicy,
    "CT": CacheTakeoverPolicy,
    "DICER": DicerPolicy,
    "LFOC": LfocPolicy,
    "CBP": CbpPolicy,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dicer-repro",
        description="Regenerate the DICER paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="truncate the catalog to its first N entries (quick mode)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        nargs="+",
        default=None,
        help="core counts for grid figures (default: 2..10)",
    )
    parser.add_argument(
        "--cache",
        type=str,
        default=None,
        help="file to persist/reuse experiment results (also enables "
        "mid-campaign checkpointing, so an interrupted run resumes); "
        "engine chosen by --backend",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "file", "sqlite"),
        default="auto",
        help="persistence engine for --cache (DESIGN.md §11): 'file' = "
        "checksummed atomic-rename JSON, 'sqlite' = WAL database with "
        "incremental checkpoints, 'auto' (default) = by path suffix / "
        "file magic",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for campaign execution: 1 = serial "
        "(default), 0 = auto-detect from CPU count, N = that many "
        "processes; results are identical at any worker count",
    )
    parser.add_argument(
        "--precision",
        choices=("exact", "fast"),
        default=None,
        help="steady-state solver mode (DESIGN.md §10): 'fast' uses the "
        "tolerance-contracted vectorised kernel (<=1e-3 relative error vs "
        "exact), 'exact' keeps bitwise-reproducible scalar parity — "
        "golden/conformance tooling pins exact. Default: implied by "
        "--kernel ('exact' kernel means exact precision, otherwise fast)",
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "exact", "fast", "compiled"),
        default="auto",
        help="solver kernel implementation (DESIGN.md §12): 'auto' "
        "(default) picks the best available for the precision, 'compiled' "
        "is the numba kernel (falls back to 'fast' when numba is not "
        "installed; pip install .[compiled]), 'fast' pins the NumPy "
        "kernel, 'exact' pins the bitwise scalar path",
    )
    parser.add_argument(
        "--pool",
        choices=("processes", "threads"),
        default="processes",
        help="execution pool for --workers > 1: 'processes' (default) "
        "isolates crashes, 'threads' shares the in-process solver caches "
        "without spawn/pickling cost — worthwhile with the GIL-releasing "
        "compiled kernel; results are digest-identical either way",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--hp", type=str, default="omnetpp1",
                        help="HP application (run / recommend)")
    parser.add_argument("--be", type=str, default="bzip22",
                        help="BE application (run / recommend)")
    parser.add_argument("--slo", type=float, default=0.9,
                        help="HP SLO fraction (recommend)")
    parser.add_argument("--n-be", type=int, default=9,
                        help="BE instance count (run / recommend)")
    parser.add_argument(
        "--policy",
        choices=sorted(RUN_POLICIES),
        default="DICER",
        help="co-location policy for the 'run' experiment",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per campaign cell before it is quarantined "
        "(default 2); transient worker crashes, hangs and exceptions "
        "cost one attempt each, with deterministic exponential backoff",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per campaign cell; a cell past its budget "
        "has its worker killed and is retried (needs --workers > 1 — a "
        "serial in-process cell cannot be preempted)",
    )
    parser.add_argument(
        "--on-failure",
        choices=("abort", "skip"),
        default="abort",
        help="what a cell that exhausts its retries does to the campaign: "
        "'abort' (default) stops with a checkpoint flushed, 'skip' "
        "quarantines the cell into the failure manifest and carries on "
        "with partial results",
    )
    parser.add_argument(
        "--metrics",
        type=str,
        default=None,
        metavar="PATH",
        help="telemetry JSONL file: with 'report', the file to summarise; "
        "with any other experiment, enable collection and write events + "
        "a final metrics snapshot there (see DESIGN.md §6)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the experiment under cProfile and print the top "
        "cumulative-time hotspots afterwards",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=20,
        metavar="N",
        help="hotspot rows to print with --profile (default 20)",
    )
    parser.add_argument(
        "--profile-out",
        type=str,
        default=None,
        metavar="PATH",
        help="with --profile, also dump raw pstats data there "
        "(inspect with 'python -m pstats PATH')",
    )
    return parser


def _run_single(store: ResultStore, args: argparse.Namespace) -> str:
    """The ``run`` experiment: one consolidation pair, rendered."""
    policy = RUN_POLICIES[args.policy]()
    try:
        result = store.get(args.hp, args.be, policy, n_be=args.n_be)
    except KeyError as exc:
        # get_app raises KeyError with a suggestion list; surface it as a
        # clean CLI error instead of a traceback.
        raise SystemExit(f"run: {exc.args[0]}") from None
    rows = [
        ["policy", result.policy],
        ["workload", f"{result.hp_name} + {result.n_be}x{result.be_name}"],
        ["hp_norm_ipc", result.hp_norm_ipc],
        ["be_norm_ipc", result.be_norm_ipc],
        ["hp_slowdown", result.hp_slowdown],
        ["efu", result.efu],
        ["duration_s", result.duration_s],
        ["hp_completions", result.hp_completions],
    ]
    if result.trace:
        if hasattr(result.trace[0], "mode"):
            # DICER decision records carry mode/reset structure.
            summary = summarise_trace(result.trace)
            rows += [
                ["periods", summary["periods"]],
                ["sampling_share", summary["sampling_share"]],
                ["resets (CT-F/CT-T)",
                 f"{summary['resets_ctf']}/{summary['resets_ctt']}"],
                ["final_hp_ways", summary["final_hp_ways"]],
            ]
        else:
            # Zoo policies (LFOC/CBP) share only period + event fields.
            events = Counter(r.event for r in result.trace)
            rows += [
                ["periods", len(result.trace)],
                ["events", ", ".join(
                    f"{kind}:{n}" for kind, n in sorted(events.items()))],
            ]
    return format_table(
        ["metric", "value"],
        rows,
        title=f"Run: {args.hp} + {args.n_be}x{args.be} under {args.policy}",
    )


def _resolve_modes(args: argparse.Namespace) -> None:
    """Resolve ``--precision`` from ``--kernel`` and reject contradictions.

    ``--precision`` defaults to ``None`` so the kernel can imply it:
    ``--kernel exact`` means exact precision, any other kernel means
    fast. An explicit ``--precision`` that contradicts the kernel (e.g.
    ``--kernel compiled --precision exact``) is a clean CLI error.
    """
    from repro.sim.kernels import check_kernel_precision, kernel_precision

    kernel = getattr(args, "kernel", "auto")
    if args.precision is None:
        args.precision = kernel_precision(kernel) or "fast"
    else:
        try:
            check_kernel_precision(kernel, args.precision)
        except ValueError as exc:
            raise SystemExit(f"dicer-repro: {exc}") from None


def _emit_kernel_gauges(registry) -> None:
    """Per-kernel solver call counts as gauges (DESIGN.md §12)."""
    from repro.sim.contention import solver_counters

    for kernel, counts in solver_counters()["by_kernel"].items():
        for key, value in counts.items():
            registry.gauge(f"solver.{kernel}.{key}").set(value)


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse arguments, run the experiment, print it."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["campaign"]:
        return _campaign_main(argv[1:])
    if argv[:1] == ["serve"]:
        return _serve_main(argv[1:])
    args = _build_parser().parse_args(argv)
    _resolve_modes(args)
    exp = args.experiment

    if exp == "report":
        if not args.metrics:
            raise SystemExit("report requires --metrics PATH")
        from pathlib import Path

        if not Path(args.metrics).exists():
            raise SystemExit(
                f"report: no telemetry file at {args.metrics} (run an "
                "experiment with --metrics PATH first)"
            )
        print(
            obs.render_metrics_summary(
                obs.summarise_metrics(obs.load_jsonl(args.metrics))
            )
        )
        return 0

    telemetry = args.metrics is not None
    if telemetry:
        obs.enable(args.metrics, campaign_id=exp)
        obs.emit(
            "campaign.start",
            experiment=exp,
            limit=args.limit,
            workers=args.workers,
            precision=args.precision,
            kernel=args.kernel,
            pool=args.pool,
        )

    try:
        if args.profile:
            _dispatch_profiled(exp, args)
        else:
            _dispatch(exp, args)
    except CampaignError as exc:
        hint = (
            " (completed cells were checkpointed; rerun with the same "
            "--cache to resume)"
            if args.cache
            else " (rerun with --cache PATH to make campaigns resumable)"
        )
        raise SystemExit(
            f"{exc}{hint}; use --on-failure=skip to quarantine failing "
            "cells and keep going"
        ) from None
    finally:
        if telemetry:
            registry = obs.get_registry()
            stats = GLOBAL_STEADY_CACHE.stats()
            lifetime = stats.pop("lifetime")
            for key, value in stats.items():
                registry.gauge(f"steady_cache.{key}").set(value)
            for key in ("hits", "misses", "hit_rate"):
                registry.gauge(f"steady_cache.lifetime.{key}").set(
                    lifetime[key]
                )
            for mode, counts in lifetime["by_precision"].items():
                for key, value in counts.items():
                    registry.gauge(
                        f"steady_cache.lifetime.{mode}.{key}"
                    ).set(value)
            _emit_kernel_gauges(registry)
            obs.emit("campaign.end", experiment=exp)
            obs.finalise()
    return 0


def _dispatch_profiled(exp: str, args: argparse.Namespace) -> None:
    """Run :func:`_dispatch` under cProfile; report hotspots afterwards.

    The hotspot table (top ``--profile-top`` functions by cumulative time)
    prints even when the experiment raises, so a profile of a run that
    died of slowness is still usable. ``--profile-out`` additionally dumps
    the raw pstats data for interactive digging.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    try:
        profiler.runcall(_dispatch, exp, args)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative")
        print(f"\n--- cProfile: top {args.profile_top} by cumulative time ---")
        stats.print_stats(args.profile_top)
        if args.profile_out:
            profiler.dump_stats(args.profile_out)
            print(f"pstats dump written to {args.profile_out}")


def _render_failures(store: ResultStore) -> str:
    """The failure manifest as a table (only called when non-empty)."""
    rows = [
        [
            f"{f['hp_name']}+{f['n_be']}x{f['be_name']}",
            f["policy"],
            f["precision"],
            f["attempts"],
            f["outcome"],
            f["error"] or "-",
        ]
        for f in store.failure_manifest()
    ]
    return format_table(
        ["cell", "policy", "precision", "attempts", "outcome", "error"],
        rows,
        title=f"Failure manifest: {len(rows)} quarantined cell(s)",
    )


def _dispatch(exp: str, args: argparse.Namespace) -> None:
    """Run one experiment and print its rendering."""
    try:
        store = ResultStore(
            cache_path=args.cache,
            n_workers=args.workers,
            supervise=SuperviseConfig(
                max_retries=args.max_retries,
                cell_timeout_s=args.cell_timeout,
                on_failure=args.on_failure,
            ),
            precision=args.precision,
            backend=args.backend,
            pool=args.pool,
            kernel=args.kernel,
        )
    except ValueError as exc:
        # e.g. --cache written under the other --precision mode
        raise SystemExit(f"{exp}: {exc}") from None

    if exp == "table1":
        print(render_table1())
    elif exp == "fig1":
        print(
            render_fig1(
                run_fig1(store, limit_hp=args.limit, limit_be=args.limit)
            )
        )
    elif exp == "fig2":
        print(render_fig2(run_fig2(limit=args.limit, precision=args.precision)))
    elif exp == "fig3":
        print(render_fig3(run_fig3()))
    elif exp in GRID_FIGURES:
        extract, render = GRID_FIGURES[exp]
        sample = build_sample(store, limit=args.limit, seed=args.seed)
        cores = tuple(args.cores) if args.cores else (2, 3, 4, 5, 6, 7, 8, 9, 10)
        if exp in ("fig4", "fig5"):
            cores = (max(cores),)
            grid = run_grid(store, sample, cores=cores)
            print(render(extract(grid, n_cores=cores[0])))
        else:
            grid = run_grid(store, sample, cores=cores)
            print(render(extract(grid)))
    elif exp == "ablation-bw":
        print(sweep_bw_threshold())
    elif exp == "ablation-alpha":
        print(sweep_alpha())
    elif exp == "ablation-phase":
        print(sweep_phase_threshold())
    elif exp == "ablation-grid":
        print(sweep_sampling_grid())
    elif exp == "ablation-cooldown":
        print(sweep_cooldown())
    elif exp == "ablation-classify":
        print(sweep_classification_threshold(store, limit=args.limit))
    elif exp == "ablation-noise":
        print(sweep_noise_robustness())
    elif exp == "ablation-detector":
        print(sweep_phase_detector())
    elif exp == "recommend":
        from repro.experiments.recommend import recommend, render_recommendation

        print(
            render_recommendation(
                recommend(args.hp, args.be, slo=args.slo, n_be=args.n_be)
            )
        )
    elif exp == "run":
        print(_run_single(store, args))
    else:  # pragma: no cover - argparse already rejects
        raise SystemExit(f"unknown experiment {exp}")

    if store.failures:
        print()
        print(_render_failures(store))
    registry = obs.get_registry()
    if registry.enabled:
        for key, value in store.stats().items():
            registry.gauge(f"store.{key}").set(value)
    store.save()


def _campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dicer-repro campaign",
        description="Drain a shared multi-process campaign queue "
        "(or monitor one; see DESIGN.md §11).",
    )
    parser.add_argument(
        "monitor",
        nargs="?",
        choices=["monitor"],
        help="render queue progress instead of working",
    )
    parser.add_argument(
        "queue_path",
        nargs="?",
        default=None,
        help="queue database (monitor mode positional)",
    )
    parser.add_argument(
        "--queue", type=str, default=None, metavar="DB",
        help="shared queue database (worker mode)",
    )
    parser.add_argument(
        "--store", type=str, default=None, metavar="DB",
        help="shared SQLite result store all workers write to",
    )
    parser.add_argument("--limit", type=int, default=None,
                        help="truncate the catalog (same as the main CLI)")
    parser.add_argument("--cores", type=int, nargs="+", default=None,
                        help="grid core counts (default: 2..10)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes inside this drainer (default 1)",
    )
    parser.add_argument(
        "--precision", choices=("exact", "fast"), default=None,
        help="solver mode; every cooperating worker must agree "
        "(default: implied by --kernel, 'fast' unless --kernel exact)",
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "exact", "fast", "compiled"),
        default="auto",
        help="solver kernel implementation (DESIGN.md §12); 'compiled' "
        "falls back to 'fast' when numba is absent",
    )
    parser.add_argument(
        "--pool",
        choices=("processes", "threads"),
        default="processes",
        help="execution pool for --workers > 1 inside this drainer",
    )
    parser.add_argument(
        "--worker-id", type=str, default=None,
        help="identity for leases/telemetry (default: host-pid)",
    )
    parser.add_argument(
        "--claim-batch", type=int, default=8, metavar="N",
        help="cells claimed per lease (default 8)",
    )
    parser.add_argument(
        "--lease", type=float, default=300.0, metavar="SECONDS",
        help="lease duration before an unheartbeated claim is stealable "
        "(default 300)",
    )
    parser.add_argument("--max-retries", type=int, default=2, metavar="N")
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS"
    )
    parser.add_argument(
        "--metrics", type=str, default=None, metavar="PATH",
        help="telemetry JSONL (shared: every worker appends, batches are "
        "tagged with the worker id; monitor mode reads it for per-worker "
        "throughput)",
    )
    parser.add_argument(
        "--enqueue-only", action="store_true",
        help="enqueue the grid and exit without draining (producer mode)",
    )
    parser.add_argument(
        "--interval", type=float, default=None, metavar="SECONDS",
        help="monitor mode: re-render every SECONDS until the queue drains",
    )
    parser.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="monitor mode: stop after N renders (default: until drained)",
    )
    return parser


def _monitor_telemetry(path: str) -> str | None:
    """Per-worker batch throughput + failures from shared telemetry JSONL.

    Failure counts render right beside throughput: a worker "making
    progress" by quarantining every cell shows up as `failed` climbing
    with `cells/s`, not as silent success. Rate math is guarded — a
    worker with no completed cells (or clock-skewed zero seconds)
    renders 0.0, never a division error.
    """
    from pathlib import Path

    if not Path(path).exists():
        return None
    per_worker: dict[str, dict[str, float]] = {}
    for record in obs.load_jsonl(path):
        if record.get("kind") != "campaign.batch":
            continue
        label = record.get("label") or record.get("campaign_id") or "?"
        agg = per_worker.setdefault(
            label, {"batches": 0, "cells": 0, "failed": 0, "seconds": 0.0}
        )
        agg["batches"] += 1
        agg["cells"] += record.get("cells", 0)
        agg["failed"] += record.get("failed_cells", 0)
        agg["seconds"] += record.get("seconds", 0.0)
    if not per_worker:
        return None
    rows = [
        [
            label,
            int(agg["batches"]),
            int(agg["cells"]),
            int(agg["failed"]),
            (
                agg["cells"] / agg["seconds"]
                if agg["cells"] > 0 and agg["seconds"] > 0
                else 0.0
            ),
        ]
        for label, agg in sorted(per_worker.items())
    ]
    return format_table(
        ["worker", "batches", "cells", "failed", "cells/s"],
        rows,
        title=f"Telemetry: {path}",
    )


def _campaign_monitor(args: argparse.Namespace) -> int:
    import time as _time

    from repro.experiments.queue import CampaignQueue, render_monitor

    path = args.queue_path or args.queue
    if not path:
        raise SystemExit("campaign monitor requires a queue database path")
    from pathlib import Path

    if not Path(path).exists():
        raise SystemExit(f"campaign monitor: no queue database at {path}")
    queue = CampaignQueue(path)
    renders = 0
    while True:
        snapshot = queue.snapshot()
        print(render_monitor(snapshot, path=str(path)))
        if args.metrics:
            telemetry = _monitor_telemetry(args.metrics)
            if telemetry:
                print()
                print(telemetry)
        renders += 1
        if args.interval is None or snapshot.terminal:
            return 0
        if args.iterations is not None and renders >= args.iterations:
            return 0
        _time.sleep(args.interval)
        print()


def _campaign_main(argv: list[str]) -> int:
    """The ``campaign`` subcommand: queue worker / producer / monitor."""
    args = _campaign_parser().parse_args(argv)
    if args.monitor == "monitor":
        return _campaign_monitor(args)
    _resolve_modes(args)
    if not args.queue or not args.store:
        raise SystemExit(
            "campaign worker mode requires --queue DB and --store DB "
            "(or: campaign monitor QUEUE_DB)"
        )

    import os
    import socket

    from repro.experiments.queue import (
        CampaignQueue,
        drain,
        render_monitor,
    )

    worker_id = args.worker_id or f"{socket.gethostname()}-{os.getpid()}"
    telemetry = args.metrics is not None
    if telemetry:
        obs.enable(args.metrics, campaign_id=worker_id)

    try:
        try:
            store = ResultStore(
                cache_path=args.store,
                n_workers=args.workers,
                supervise=SuperviseConfig(
                    max_retries=args.max_retries,
                    cell_timeout_s=args.cell_timeout,
                    # Queue workers never abort the shared campaign over
                    # one poison cell: it becomes a 'failed' queue row.
                    on_failure="skip",
                ),
                precision=args.precision,
                # The shared store must support concurrent writers.
                backend="sqlite",
                batch_label=worker_id,
                pool=args.pool,
                kernel=args.kernel,
            )
        except ValueError as exc:
            raise SystemExit(f"campaign: {exc}") from None
        queue = CampaignQueue(args.queue, lease_s=args.lease)

        # Every worker derives the same sample and enqueues the same grid
        # in canonical order; content-addressed keys make this idempotent.
        from repro.experiments.grid import PAPER_CORES, grid_cells

        sample = build_sample(store, limit=args.limit, seed=args.seed)
        cores = tuple(args.cores) if args.cores else PAPER_CORES
        cells = grid_cells(sample, cores=cores)
        added = queue.enqueue(cells)
        print(
            f"[{worker_id}] enqueued {added} new cell(s) "
            f"({len(cells)} in grid)"
        )
        # Classification itself computed cells; persist them for peers.
        store.save()
        if args.enqueue_only:
            print(render_monitor(queue.snapshot(), path=args.queue))
            return 0

        tally = drain(
            store,
            queue,
            worker_id,
            claim_batch=args.claim_batch,
        )
        print(
            f"[{worker_id}] drained: {tally['done']} done, "
            f"{tally['failed']} failed, {tally['batches']} batch(es), "
            f"{tally['stolen']} stolen"
        )
        if store.failures:
            print()
            print(_render_failures(store))
        print(render_monitor(queue.snapshot(), path=args.queue))
        registry = obs.get_registry()
        if registry.enabled:
            for key, value in store.stats().items():
                registry.gauge(f"store.{key}").set(value)
        store.save()
    finally:
        if telemetry:
            _emit_kernel_gauges(obs.get_registry())
            obs.emit("campaign.end", worker=worker_id)
            obs.finalise()
    return 0


# -- serve: the repro.serve control plane (DESIGN.md §14) --------------------


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dicer-repro serve",
        description="Drive the fault-tolerant multi-node control plane "
        "(loadgen / chaos / run / monitor; see DESIGN.md §14).",
    )
    sub = parser.add_subparsers(dest="mode", required=True)

    loadgen = sub.add_parser(
        "loadgen", help="generate a seeded submit/depart event stream"
    )
    loadgen.add_argument("--out", required=True, metavar="JSONL")
    loadgen.add_argument("--events", type=int, default=1000, metavar="N")
    loadgen.add_argument("--seed", type=int, default=None)
    loadgen.add_argument("--hp-frac", type=float, default=0.12)
    loadgen.add_argument("--depart-frac", type=float, default=0.45)

    chaos = sub.add_parser(
        "chaos", help="weave seeded node faults into a base stream"
    )
    chaos.add_argument("--base", required=True, metavar="JSONL",
                       help="loadgen output to weave into")
    chaos.add_argument("--out", required=True, metavar="JSONL")
    chaos.add_argument("--plan", default=None, metavar="JSON",
                       help="write the injection ledger + kill_seq here")
    chaos.add_argument("--seed", type=int, default=None)
    chaos.add_argument("--nodes", type=int, default=3)
    chaos.add_argument("--crashes", type=int, default=1)
    chaos.add_argument("--hangs", type=int, default=1)
    chaos.add_argument("--partitions", type=int, default=1)
    chaos.add_argument("--assign-faults", type=int, default=2)

    run = sub.add_parser(
        "run", help="replay an event stream through the serve daemon "
        "(SIGTERM checkpoints; rerunning resumes from the snapshot)"
    )
    run.add_argument("--events", required=True, metavar="JSONL")
    run.add_argument("--snapshot", required=True, metavar="JSON")
    run.add_argument("--nodes", type=int, default=3)
    run.add_argument("--policy", default="DICER",
                     help="per-node policy (any policy_from_name spec)")
    run.add_argument("--slo", type=float, default=0.9)
    run.add_argument("--precision", choices=("exact", "fast"),
                     default="fast")
    run.add_argument("--kernel",
                     choices=("auto", "exact", "fast", "compiled"),
                     default="auto")
    run.add_argument("--snapshot-every", type=int, default=100)
    run.add_argument("--throttle-s", type=float, default=0.0,
                     help="pacing between events (kill/restart testing)")
    run.add_argument("--evaluate-every", type=int, default=0,
                     help="drive dirty nodes' controllers every N events")
    run.add_argument("--max-retries", type=int, default=3)
    run.add_argument("--retry-base-s", type=float, default=0.0)
    run.add_argument("--supervise", action="store_true",
                     help="run the per-node heartbeat supervisors")
    run.add_argument("--summary", default=None, metavar="JSON",
                     help="write the final daemon summary here")
    run.add_argument("--metrics", default=None, metavar="JSONL",
                     help="telemetry stream (repro.obs)")

    monitor = sub.add_parser(
        "monitor", help="render fleet status from a serve snapshot"
    )
    monitor.add_argument("snapshot_path", metavar="SNAPSHOT")
    monitor.add_argument("--events", default=None, metavar="JSONL",
                         help="the run's event stream (enables ETA)")
    monitor.add_argument("--interval", type=float, default=None,
                         metavar="SECONDS")
    monitor.add_argument("--iterations", type=int, default=None, metavar="N")
    return parser


def _render_serve_status(
    state: dict, *, path: str = "", total_events: int | None = None
) -> str:
    """One serve snapshot as monitor tables.

    All rate math is guarded: a snapshot with zero applied events or
    zero elapsed time renders "-" for throughput and ETA instead of
    dividing by zero, and failures render right beside throughput so a
    fleet "progressing" by failing placements is visible at a glance.
    """
    counters = state.get("counters", {})
    applied = int(counters.get("events_applied", 0))
    elapsed = float(state.get("elapsed_s", 0.0))
    throughput = applied / elapsed if applied > 0 and elapsed > 0 else None
    by_status = Counter(
        job.get("status", "?") for job in state.get("jobs", [])
    )
    rows = [
        ["applied_seq", state.get("applied_seq", -1)],
        ["events applied", applied],
        ["elapsed", f"{elapsed:.1f}s"],
        [
            "throughput",
            f"{throughput:.1f} events/s" if throughput else "-",
        ],
        ["failed placements", counters.get("placement_failures", 0)],
        ["retries", counters.get("placement_retries", 0)],
    ]
    if total_events is not None:
        remaining = max(0, total_events - (state.get("applied_seq", -1) + 1))
        rows.append(["remaining", remaining])
        rows.append(
            [
                "eta",
                "drained"
                if remaining == 0
                else (
                    f"{remaining / throughput:.0f}s" if throughput else "-"
                ),
            ]
        )
    for status in ("placed", "pending", "rejected", "departed"):
        rows.append([f"jobs {status}", by_status.get(status, 0)])
    rows.append(["submitted", counters.get("submitted", 0)])
    title = "Serve fleet" + (f": {path}" if path else "")
    out = format_table(["metric", "value"], rows, title=title)

    node_jobs: Counter = Counter(
        job["node_id"]
        for job in state.get("jobs", [])
        if job.get("status") == "placed" and job.get("node_id")
    )
    node_rows = [
        [nid, entry.get("health", "?"), entry.get("restarts", 0),
         node_jobs.get(nid, 0)]
        for nid, entry in sorted(state.get("nodes", {}).items())
    ]
    if node_rows:
        out += "\n\n" + format_table(
            ["node", "health", "restarts", "jobs"],
            node_rows,
            title="Nodes",
        )
    return out


def _serve_monitor(args: argparse.Namespace) -> int:
    import time as _time
    from pathlib import Path

    from repro.serve.events import read_events
    from repro.serve.snapshot import load_snapshot

    total_events = None
    if args.events:
        if not Path(args.events).exists():
            raise SystemExit(f"serve monitor: no event stream at {args.events}")
        total_events = len(read_events(args.events))
    renders = 0
    while True:
        state = load_snapshot(args.snapshot_path)
        if state is None:
            print(f"serve monitor: no snapshot at {args.snapshot_path} yet")
        else:
            print(
                _render_serve_status(
                    state,
                    path=str(args.snapshot_path),
                    total_events=total_events,
                )
            )
        renders += 1
        drained = (
            state is not None
            and total_events is not None
            and state.get("applied_seq", -1) + 1 >= total_events
        )
        if args.interval is None or drained:
            return 0
        if args.iterations is not None and renders >= args.iterations:
            return 0
        _time.sleep(args.interval)
        print()


def _serve_main(argv: list[str]) -> int:
    """The ``serve`` subcommand: loadgen / chaos / run / monitor."""
    args = _serve_parser().parse_args(argv)
    if args.mode == "monitor":
        return _serve_monitor(args)

    import json as _json
    from pathlib import Path

    from repro.util.rng import DEFAULT_SEED

    seed = getattr(args, "seed", None)
    seed = DEFAULT_SEED if seed is None else seed

    if args.mode == "loadgen":
        from repro.serve.events import write_events
        from repro.serve.loadgen import generate_events

        events = generate_events(
            seed,
            args.events,
            hp_frac=args.hp_frac,
            depart_frac=args.depart_frac,
        )
        write_events(args.out, events)
        n_submit = sum(1 for e in events if e.kind == "submit")
        print(
            f"serve loadgen: {len(events)} events ({n_submit} submits) "
            f"seed={seed} -> {args.out}"
        )
        return 0

    if args.mode == "chaos":
        from repro.serve.chaos import weave_chaos
        from repro.serve.events import read_events, write_events
        from repro.serve.placement import PlaneConfig

        base = read_events(args.base)
        node_ids = PlaneConfig.for_nodes(args.nodes).node_ids
        plan = weave_chaos(
            base,
            seed=seed,
            node_ids=node_ids,
            n_crashes=args.crashes,
            n_hangs=args.hangs,
            n_partitions=args.partitions,
            n_assign_faults=args.assign_faults,
        )
        write_events(args.out, list(plan.events))
        if args.plan:
            Path(args.plan).write_text(
                _json.dumps(
                    {
                        "kill_seq": plan.kill_seq,
                        "counts": plan.counts(),
                        "faults": list(plan.faults),
                        "dropped": list(plan.dropped),
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
        print(
            f"serve chaos: {len(plan.events)} events "
            f"({plan.counts()}) kill_seq={plan.kill_seq} -> {args.out}"
        )
        if plan.dropped:
            kinds = ", ".join(row["kind"] for row in plan.dropped)
            print(
                f"serve chaos: WARNING {len(plan.dropped)} requested "
                f"fault(s) found no free window and were dropped: {kinds}"
            )
        return 0

    # args.mode == "run"
    import asyncio

    from repro.serve.daemon import ServeConfig, ServeDaemon
    from repro.serve.placement import PlaneConfig

    telemetry = args.metrics is not None
    if telemetry:
        obs.enable(args.metrics, campaign_id="serve")
    try:
        plane = PlaneConfig.for_nodes(
            args.nodes,
            policy=args.policy,
            slo=args.slo,
            precision=args.precision,
            kernel=args.kernel,
        )
        daemon = ServeDaemon(
            ServeConfig(
                plane=plane,
                events_path=Path(args.events),
                snapshot_path=Path(args.snapshot),
                snapshot_every=args.snapshot_every,
                throttle_s=args.throttle_s,
                evaluate_every=args.evaluate_every,
                max_retries=args.max_retries,
                retry_base_s=args.retry_base_s,
                supervise=args.supervise,
            )
        )
        if daemon.resumed:
            print(
                f"serve run: resumed from snapshot at "
                f"applied_seq={daemon.plane.applied_seq}"
            )
        summary = asyncio.run(daemon.run())
        if args.summary:
            Path(args.summary).parent.mkdir(parents=True, exist_ok=True)
            Path(args.summary).write_text(
                _json.dumps(summary, indent=2, sort_keys=True) + "\n"
            )
        jobs = summary["jobs"]
        print(
            f"serve run: applied_seq={summary['applied_seq']} "
            f"placed={jobs['placed']} pending={jobs['pending']} "
            f"rejected={jobs['rejected']} departed={jobs['departed']} "
            f"failures={summary['counters']['placement_failures']} "
            f"{'(stopped early)' if summary['stopped_early'] else ''}"
        )
        print(f"serve run: digest={summary['digest']}")
    finally:
        if telemetry:
            obs.emit("campaign.end", experiment="serve")
            obs.finalise()
    return 0


if __name__ == "__main__":
    sys.exit(main())
