"""Ablations — the sensitivity analysis the paper mentions but omits.

Section 4.1 notes every DICER parameter "has been selected after performing
a sensitivity analysis which for the sake of space is not included". These
sweeps reconstruct that analysis for the design choices DESIGN.md calls
out: the bandwidth-saturation threshold, the IPC stability band, the phase
threshold, the sampling grid, the resampling cooldown, and (on the
experiment side) the CT-F/CT-T materiality threshold.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.allocation import Allocation
from repro.core.config import DicerConfig, TABLE1_DICER_CONFIG
from repro.core.dicer import ControllerMode
from repro.core.policies import DicerPolicy
from repro.experiments.runner import PairResult, run_pair
from repro.experiments.store import ResultStore
from repro.sim.platform import TABLE1_PLATFORM, gbps_to_bytes
from repro.util.tables import format_table
from repro.workloads.catalog import app_names
from repro.workloads.mix import make_mix

__all__ = [
    "sweep_noise_robustness",
    "sweep_bw_threshold",
    "sweep_alpha",
    "sweep_phase_threshold",
    "sweep_phase_detector",
    "sweep_sampling_grid",
    "sweep_cooldown",
    "sweep_classification_threshold",
    "DEFAULT_ABLATION_PAIRS",
]

#: A small, class-diverse pair set: CT-T saturating, CT-F cache-sensitive,
#: and a phased HP that exercises the reset path.
DEFAULT_ABLATION_PAIRS: tuple[tuple[str, str], ...] = (
    ("milc1", "gcc_base3"),
    ("omnetpp1", "bzip22"),
    ("wrf1", "gcc_base5"),
)


def _run_variants(
    pairs: tuple[tuple[str, str], ...],
    variants: list[tuple[str, DicerConfig]],
    n_be: int = 9,
) -> list[list[object]]:
    rows: list[list[object]] = []
    for label, config in variants:
        for hp, be in pairs:
            result: PairResult = run_pair(
                make_mix(hp, be, n_be=n_be),
                DicerPolicy(config),
                TABLE1_PLATFORM,
            )
            rows.append(
                [
                    label,
                    result.label,
                    result.hp_norm_ipc,
                    result.be_norm_ipc,
                    result.efu,
                ]
            )
    return rows


def _render(title: str, rows: list[list[object]]) -> str:
    return format_table(
        ["Variant", "Workload", "HP norm IPC", "BE norm IPC", "EFU"],
        rows,
        title=title,
    )


def sweep_bw_threshold(
    thresholds_gbps: tuple[float, ...] = (30.0, 40.0, 50.0, 60.0, 68.0),
    pairs: tuple[tuple[str, str], ...] = DEFAULT_ABLATION_PAIRS,
) -> str:
    """Saturation threshold: too low resamples forever, too high never
    reclassifies a CT-Thwarted workload."""
    variants = [
        (
            f"thr={g:.0f}Gbps",
            replace(TABLE1_DICER_CONFIG, bw_threshold_bytes=gbps_to_bytes(g)),
        )
        for g in thresholds_gbps
    ]
    return _render(
        "Ablation: bandwidth saturation threshold",
        _run_variants(pairs, variants),
    )


def sweep_alpha(
    alphas: tuple[float, ...] = (0.01, 0.03, 0.05, 0.10, 0.20),
    pairs: tuple[tuple[str, str], ...] = DEFAULT_ABLATION_PAIRS,
) -> str:
    """IPC stability band: small alpha resets on noise, large alpha keeps
    shrinking HP's allocation through real degradation."""
    variants = [
        (f"alpha={a:.0%}", replace(TABLE1_DICER_CONFIG, alpha=a))
        for a in alphas
    ]
    return _render("Ablation: IPC stability alpha", _run_variants(pairs, variants))


def sweep_phase_threshold(
    thresholds: tuple[float, ...] = (0.10, 0.30, 0.60, 1.00),
    pairs: tuple[tuple[str, str], ...] = (("wrf1", "gcc_base5"),
                                          ("ferret1", "bzip22")),
) -> str:
    """Phase threshold (Equation 2), probed with phased HPs."""
    variants = [
        (f"phase_thr={t:.0%}", replace(TABLE1_DICER_CONFIG, phase_threshold=t))
        for t in thresholds
    ]
    return _render(
        "Ablation: phase-change threshold", _run_variants(pairs, variants)
    )


def sweep_sampling_grid(
    pairs: tuple[tuple[str, str], ...] = (("milc1", "gcc_base3"),
                                          ("omnetpp1", "milc1")),
) -> str:
    """Sampling grid density vs sampling cost."""
    grids: dict[str, tuple[int, ...]] = {
        "coarse": (19, 10, 4, 1),
        "default": TABLE1_DICER_CONFIG.sample_hp_ways,
        "exhaustive": tuple(range(19, 0, -1)),
    }
    variants = [
        (name, replace(TABLE1_DICER_CONFIG, sample_hp_ways=grid))
        for name, grid in grids.items()
    ]
    return _render("Ablation: sampling grid", _run_variants(pairs, variants))


def sweep_cooldown(
    cooldowns: tuple[int, ...] = (0, 1, 3, 5, 10),
    pairs: tuple[tuple[str, str], ...] = (("milc1", "milc1"),
                                          ("namd1", "lbm1")),
) -> str:
    """Resampling cooldown, probed with workloads saturated even at their
    optimum (the livelock case the guard exists for)."""
    variants = [
        (
            f"cooldown={c}",
            replace(TABLE1_DICER_CONFIG, resample_cooldown_periods=c),
        )
        for c in cooldowns
    ]
    return _render("Ablation: resampling cooldown", _run_variants(pairs, variants))


def sweep_classification_threshold(
    store: ResultStore,
    thresholds: tuple[float, ...] = (0.0, 0.01, 0.02, 0.05, 0.10),
    *,
    limit: int | None = None,
) -> str:
    """CT-F materiality threshold vs resulting CT-T population share."""
    from repro.experiments.classify import classify_all  # cycle-free import

    names = app_names()[:limit]
    classes = classify_all(store, hp_names=names, be_names=names)
    rows = []
    for eps in thresholds:
        ctt = sum(
            1
            for c in classes
            if (c.um_slowdown - c.ct_slowdown) / c.um_slowdown <= eps
        )
        rows.append([f"eps={eps:.0%}", len(classes), 100.0 * ctt / len(classes)])
    return format_table(
        ["Threshold", "Pairs", "CT-T share (%)"],
        rows,
        float_fmt=".1f",
        title="Ablation: CT-F materiality threshold (paper reports ~60% CT-T)",
    )


def sweep_noise_robustness(
    noise_levels: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10),
    alphas: tuple[float, ...] = (0.01, 0.05, 0.15),
    pairs: tuple[tuple[str, str], ...] = (("omnetpp1", "bzip22"),
                                          ("milc1", "gcc_base6")),
    seed: int = 0,
) -> str:
    """Measurement noise vs the IPC stability band (Equation 3's alpha).

    On hardware, IPC jitter that exceeds alpha masquerades as performance
    changes: too-small alpha triggers spurious resets, and the controller
    thrashes. This sweep quantifies the alpha the paper's 5 % default must
    absorb — the sensitivity study Section 4.1 alludes to, extended with an
    explicit noise axis the simulator makes controllable.
    """
    from repro.core.dicer import DicerController
    from repro.rdt.harness import drive
    from repro.rdt.noisy import NoisyRdt
    from repro.rdt.simulated import SimulatedRdt
    from repro.sim.server import Server
    from repro.sim.solo import solo_profile

    rows: list[list[object]] = []
    for noise in noise_levels:
        for alpha in alphas:
            config = replace(TABLE1_DICER_CONFIG, alpha=alpha)
            for hp, be in pairs:
                mix = make_mix(hp, be, n_be=9)
                apps = mix.apps()
                server = Server(
                    TABLE1_PLATFORM,
                    apps,
                    Allocation.cache_takeover(20).to_partition(len(apps)),
                )
                backend = NoisyRdt(
                    SimulatedRdt(server),
                    ipc_noise=noise,
                    bw_noise=noise,
                    seed=seed,
                )
                controller = DicerController(config, 20)
                trace = drive(controller, backend, max_periods=400)
                solo = solo_profile(mix.hp, TABLE1_PLATFORM)
                hp_norm = (
                    server.apps[0].total_instructions
                    / (TABLE1_PLATFORM.freq_hz * server.time)
                    / solo.avg_ipc
                )
                resets = sum(
                    1
                    for r in trace
                    if r.mode is ControllerMode.RESET_VALIDATE
                )
                rows.append(
                    [
                        f"noise={noise:.0%} alpha={alpha:.0%}",
                        f"{hp} {be}",
                        hp_norm,
                        float(resets) / len(trace),
                        float(len(trace)),
                    ]
                )
    return format_table(
        ["Variant", "Workload", "HP norm IPC", "Resets/period", "Periods"],
        rows,
        title="Ablation: measurement noise vs IPC stability band",
    )


def sweep_phase_detector(
    pairs: tuple[tuple[str, str], ...] = (("wrf1", "gcc_base5"),
                                          ("ferret1", "bzip22"),
                                          ("omnetpp1", "bzip22")),
) -> str:
    """Equation 2's statistic: geomean-of-3 (paper) vs EWMA baseline."""
    variants = [
        ("geomean3", TABLE1_DICER_CONFIG),
        ("ewma w=0.3", replace(TABLE1_DICER_CONFIG, phase_detector="ewma")),
        (
            "ewma w=0.1",
            replace(
                TABLE1_DICER_CONFIG, phase_detector="ewma", ewma_weight=0.1
            ),
        ),
    ]
    return _render("Ablation: phase detector", _run_variants(pairs, variants))
