"""Table 1 — system configuration.

Renders the platform model and the DICER parameters exactly as the paper's
Table 1 groups them (System / DICER). Trivial, but keeping it as a bench
target means the reported configuration always reflects the code's actual
defaults rather than stale documentation.
"""

from __future__ import annotations

from repro.core.config import DicerConfig, TABLE1_DICER_CONFIG
from repro.sim.platform import PlatformConfig, TABLE1_PLATFORM, bytes_to_gbps
from repro.util.tables import format_table

__all__ = ["render_table1"]


def render_table1(
    platform: PlatformConfig = TABLE1_PLATFORM,
    config: DicerConfig = TABLE1_DICER_CONFIG,
) -> str:
    """Table 1 rendered from the live platform/config defaults."""
    rows = [
        ["System", "Processor", f"{platform.n_cores} cores, "
                                f"{platform.freq_hz / 1e9:.1f} GHz"],
        ["System", "LLC", f"{platform.llc_bytes // (1024 * 1024)} MB, "
                          f"{platform.llc_ways}-way set associative"],
        ["System", "Memory bandwidth",
         f"{bytes_to_gbps(platform.mem_bw_bytes):.1f} Gbps"],
        ["System", "Base memory latency",
         f"{platform.mem_lat_cycles:.0f} cycles (model)"],
        ["DICER", "Monitoring period", f"T = {config.period_s:g} s"],
        ["DICER", "BW saturation threshold",
         f"{bytes_to_gbps(config.bw_threshold_bytes):.1f} Gbps"],
        ["DICER", "Phase detection threshold",
         f"{config.phase_threshold:.0%} (Equation 2)"],
        ["DICER", "IPC stability percentage",
         f"alpha = {config.alpha:.0%} (Equation 3)"],
        ["DICER", "Sampling grid (HP ways)",
         ", ".join(str(w) for w in config.sample_hp_ways)],
    ]
    return format_table(
        ["Group", "Parameter", "Value"],
        rows,
        title="Table 1: system configuration",
    )
