"""CSV export for campaign data.

The benchmark harness renders ASCII tables for humans; this module writes
the same series as CSV for plotting pipelines (the paper's figures are one
``pandas.read_csv`` + ``matplotlib`` step away). All writers go through
:func:`write_csv`, which is atomic (write-then-rename) so an interrupted
campaign never leaves a truncated file.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.experiments.fig1 import Fig1Data, PAPER_X_GRID
from repro.experiments.fig2 import Fig2Data
from repro.experiments.grid import GridData

__all__ = [
    "write_csv",
    "grid_to_csv",
    "fig1_to_csv",
    "fig2_to_csv",
    "store_to_csv",
]


def write_csv(
    path: Path | str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write rows atomically; returns the final path."""
    path = Path(path)
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    tmp.replace(path)
    return path


def grid_to_csv(grid: GridData, path: Path | str) -> Path:
    """One row per executed grid cell — the master data behind Figs. 4-8."""
    rows = [
        [
            p.workload.hp_name,
            p.workload.be_name,
            p.workload.label,
            p.n_cores,
            p.policy,
            p.result.hp_norm_ipc,
            p.result.be_norm_ipc,
            p.result.hp_slowdown,
            p.result.efu,
        ]
        for p in grid.points
    ]
    return write_csv(
        path,
        [
            "hp",
            "be",
            "class",
            "cores",
            "policy",
            "hp_norm_ipc",
            "be_norm_ipc",
            "hp_slowdown",
            "efu",
        ],
        rows,
    )


def store_to_csv(
    store_path: Path | str,
    path: Path | str,
    *,
    backend: str = "auto",
) -> Path:
    """Export a persisted result store — either engine — as CSV.

    Reads the artefact directly through its
    :class:`~repro.experiments.backends.StoreBackend` (no executions, no
    precision gate), so a campaign written by queue workers into SQLite
    and one checkpointed to JSON export identically. Rows are sorted by
    the store key for stable diffs across backends and worker counts.
    """
    from repro.experiments.backends import open_backend

    rows = open_backend(store_path, backend).load().rows
    rows.sort(
        key=lambda r: (
            r.get("hp_name", ""),
            r.get("be_name", ""),
            r.get("n_be", 0),
            r.get("policy", ""),
        )
    )
    headers = [
        "hp_name",
        "be_name",
        "n_be",
        "policy",
        "hp_norm_ipc",
        "be_norm_ipc",
        "hp_slowdown",
        "efu",
        "duration_s",
        "hp_completions",
    ]
    return write_csv(
        path, headers, [[r.get(h) for h in headers] for r in rows]
    )


def fig1_to_csv(data: Fig1Data, path: Path | str) -> Path:
    """The two CDF series of Figure 1."""
    rows = []
    for x in PAPER_X_GRID:
        um, ct = data.cdf_row(x)
        rows.append([x, um, ct])
    return write_csv(path, ["slowdown", "um_fraction", "ct_fraction"], rows)


def fig2_to_csv(data: Fig2Data, path: Path | str) -> Path:
    """The three CDF curves of Figure 2."""
    targets = sorted(data.min_ways)
    rows = [
        [ways] + [data.cdf(t, ways) for t in targets]
        for ways in range(1, data.total_ways + 1)
    ]
    return write_csv(
        path, ["ways"] + [f"target_{t:.2f}" for t in targets], rows
    )
