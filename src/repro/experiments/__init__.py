"""Evaluation campaigns: one module per paper table/figure, the CT-F/CT-T
classification, the shared 120-workload grid, ablations, and the CLI."""

from repro.experiments.classify import (
    CT_F_THRESHOLD,
    PairClass,
    classify_all,
    classify_pair,
    representative_sample,
)
from repro.experiments.grid import GridData, GridPoint, build_sample, run_grid
from repro.experiments.parallel import Cell, ParallelExecutor
from repro.experiments.supervise import (
    CampaignError,
    CampaignOutcome,
    FailedCell,
    SupervisedExecutor,
    SuperviseConfig,
)
from repro.experiments.recommend import Recommendation, recommend, render_recommendation
from repro.experiments.reporting import fig1_to_csv, fig2_to_csv, grid_to_csv, write_csv
from repro.experiments.runner import CustomResult, PairResult, run_custom, run_pair
from repro.experiments.store import ResultStore

__all__ = [
    "CT_F_THRESHOLD",
    "PairClass",
    "classify_all",
    "classify_pair",
    "representative_sample",
    "GridData",
    "GridPoint",
    "build_sample",
    "run_grid",
    "Cell",
    "ParallelExecutor",
    "CampaignError",
    "CampaignOutcome",
    "FailedCell",
    "SupervisedExecutor",
    "SuperviseConfig",
    "Recommendation",
    "recommend",
    "render_recommendation",
    "fig1_to_csv",
    "fig2_to_csv",
    "grid_to_csv",
    "write_csv",
    "CustomResult",
    "PairResult",
    "run_custom",
    "run_pair",
    "ResultStore",
]
