"""Figure 7 — percentage of workloads achieving a given HP SLO.

For SLOs of 80/85/90/95 % and 2..10 employed cores: the fraction of sampled
workloads whose HP kept its normalised IPC above the SLO. The paper's
reading: UM collapses as cores fill; DICER matches or beats CT, especially
beyond half occupancy; at 95 % DICER and CT converge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.grid import GridData
from repro.metrics.slo import PAPER_SLOS, slo_achieved
from repro.util.tables import format_table

__all__ = ["Fig7Data", "extract_fig7", "render_fig7"]


@dataclass(frozen=True)
class Fig7Data:
    """SLO-conformance fractions per (SLO, policy, cores)."""
    cores: tuple[int, ...]
    policies: tuple[str, ...]
    slos: tuple[float, ...]
    #: (slo, policy, n_cores) -> fraction achieved in [0, 1].
    achieved: dict[tuple[float, str, int], float]


def extract_fig7(
    grid: GridData, slos: tuple[float, ...] = PAPER_SLOS
) -> Fig7Data:
    """Aggregate the grid into Figure 7's series."""
    achieved: dict[tuple[float, str, int], float] = {}
    for slo in slos:
        for policy in grid.policies:
            for n_cores in grid.cores:
                points = grid.select(policy=policy, n_cores=n_cores)
                if not points:
                    raise ValueError(
                        f"no grid points for {policy}@{n_cores}"
                    )
                hits = sum(
                    1
                    for p in points
                    if slo_achieved(p.result.hp_norm_ipc, slo)
                )
                achieved[(slo, policy, n_cores)] = hits / len(points)
    return Fig7Data(
        cores=grid.cores,
        policies=grid.policies,
        slos=slos,
        achieved=achieved,
    )


def render_fig7(data: Fig7Data) -> str:
    """One table per SLO level."""
    sections = []
    for slo in data.slos:
        rows = [
            [n_cores]
            + [
                100.0 * data.achieved[(slo, p, n_cores)]
                for p in data.policies
            ]
            for n_cores in data.cores
        ]
        sections.append(
            format_table(
                ["Cores"] + [f"{p} (%)" for p in data.policies],
                rows,
                float_fmt=".1f",
                title=f"Figure 7: workloads achieving SLO = {slo:.0%}",
            )
        )
    return "\n\n".join(sections)
