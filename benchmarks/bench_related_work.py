"""Related-work comparison (paper Section 5): DICER vs DCP-QoS.

DCP-QoS (Papadakis et al.) is DICER without bandwidth-saturation
detection. The delta on CT-Thwarted workloads is the paper's novelty
claim made measurable.
"""

from conftest import publish

from repro.core.dcpqos import DcpQosPolicy
from repro.core.policies import CacheTakeoverPolicy, DicerPolicy
from repro.experiments.runner import run_pair
from repro.util.tables import format_table
from repro.workloads.mix import make_mix

PAIRS = (
    ("milc1", "gcc_base6"),   # CT-T: saturation is the whole story
    ("lbm1", "gcc_base8"),    # CT-T: streaming HP
    ("omnetpp1", "bzip22"),   # CT-F: both should match CT
)


def bench_related_work(benchmark):
    def run():
        rows = []
        for hp, be in PAIRS:
            mix = make_mix(hp, be, n_be=9)
            for policy in (CacheTakeoverPolicy(), DcpQosPolicy(), DicerPolicy()):
                r = run_pair(mix, policy)
                rows.append(
                    [f"{hp}+{be}", r.policy, r.hp_norm_ipc, r.be_norm_ipc, r.efu]
                )
        return format_table(
            ["Workload", "Policy", "HP norm IPC", "BE norm IPC", "EFU"],
            rows,
            title="Related work: CT vs DCP-QoS vs DICER",
        )

    publish("related_work", benchmark.pedantic(run, rounds=1, iterations=1))
