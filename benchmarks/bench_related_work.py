"""Related-work shoot-out (paper Section 5, extended): the policy zoo.

The original comparison pitted DICER against DCP-QoS (DICER without
bandwidth-saturation detection). The zoo generalises it into a
six-policy head-to-head — UM / CT / S10 / DICER / LFOC / CBP — over

* the classic 1-HP grid (one HP, nine BE instances), executed through
  :class:`~repro.experiments.store.ResultStore` three ways — serial,
  multi-process and thread-pool — with the artefact digests asserted
  identical (the campaign-determinism contract of DESIGN.md §11-12);
* new multi-HP mixes (:func:`~repro.experiments.runner.run_multi`),
  where the headline is the *worst* co-equal HP's normalised IPC —
  LFOC's fairness target — asserted repeat-stable.

DCP-QoS keeps its historical three-pair table below the shoot-out so the
paper's novelty claim stays measurable.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from pathlib import Path

from conftest import PRECISION, publish

from repro.core.dcpqos import DcpQosPolicy
from repro.core.policies import CacheTakeoverPolicy, DicerPolicy
from repro.experiments.backends import open_backend
from repro.experiments.classify import shootout
from repro.experiments.grid import zoo_policies
from repro.experiments.runner import run_multi, run_pair
from repro.experiments.store import ResultStore
from repro.sim.contention import GLOBAL_STEADY_CACHE
from repro.util.tables import format_table
from repro.workloads.mix import make_mix, make_multi_mix

PAIRS = (
    ("milc1", "gcc_base6"),   # CT-T: saturation is the whole story
    ("lbm1", "gcc_base8"),    # CT-T: streaming HP
    ("omnetpp1", "bzip22"),   # CT-F: both should match CT
)

#: Multi-HP mixes: co-equal HPs plus best-effort fillers.
MULTI_MIXES = (
    (("omnetpp1", "milc1"), ("bzip22", "bzip22")),
    (("omnetpp1", "mcf1", "lbm1"), ("gcc_base6",)),
    (("milc1", "lbm1"), ("bzip22", "gcc_base6", "gcc_base8")),
)


def _grid_digest(tmpdir: Path, name: str, *, workers: int, pool: str) -> str:
    """Artefact digest of the 1-HP shoot-out under one execution mode."""
    GLOBAL_STEADY_CACHE.clear()
    path = tmpdir / name
    store = ResultStore(
        cache_path=path,
        n_workers=workers,
        precision=PRECISION,
        pool=pool,
    )
    shootout(store, PAIRS, zoo_policies())
    store.save()
    return open_backend(path).digest()


def _multi_rows():
    rows = []
    for hp_names, be_names in MULTI_MIXES:
        mix = make_multi_mix(hp_names, be_names)
        for policy in zoo_policies():
            r = run_multi(mix, policy, precision=PRECISION)
            rows.append(
                [mix.label, r.policy, r.min_hp_norm_ipc, r.efu]
            )
    return rows


def _rows_digest(rows) -> str:
    payload = json.dumps(rows, sort_keys=True, default=float)
    return hashlib.sha256(payload.encode()).hexdigest()


def bench_policy_zoo(benchmark):
    def run():
        # -- 1-HP shoot-out: serial == processes == threads ------------
        with tempfile.TemporaryDirectory() as tmp:
            tmpdir = Path(tmp)
            d_serial = _grid_digest(
                tmpdir, "serial.json", workers=1, pool="processes"
            )
            d_procs = _grid_digest(
                tmpdir, "procs.json", workers=2, pool="processes"
            )
            d_threads = _grid_digest(
                tmpdir, "threads.json", workers=2, pool="threads"
            )
        assert d_serial == d_procs == d_threads, (
            "policy-zoo campaign not digest-stable across pools: "
            f"serial={d_serial} processes={d_procs} threads={d_threads}"
        )

        store = ResultStore(precision=PRECISION)
        rows = []
        for row in shootout(store, PAIRS, zoo_policies()):
            for policy, norm, efu_val in zip(
                row.policies, row.hp_norm_ipcs, row.efus
            ):
                rows.append(
                    [f"{row.hp_name}+{row.be_name}", policy, norm, efu_val]
                )
        table_1hp = format_table(
            ["Workload", "Policy", "HP norm IPC", "EFU"],
            rows,
            title=(
                "Policy zoo, 1-HP grid "
                f"(digest-stable: {d_serial[:12]})"
            ),
        )

        # -- multi-HP shoot-out: repeat-stable -------------------------
        multi_rows = _multi_rows()
        assert _rows_digest(multi_rows) == _rows_digest(_multi_rows()), (
            "multi-HP shoot-out not repeat-stable"
        )
        table_multi = format_table(
            ["Mix", "Policy", "min HP norm IPC", "EFU"],
            multi_rows,
            title="Policy zoo, multi-HP mixes (worst co-equal HP)",
        )
        return table_1hp + "\n\n" + table_multi

    publish("policy_zoo", benchmark.pedantic(run, rounds=1, iterations=1))


def bench_related_work(benchmark):
    def run():
        rows = []
        for hp, be in PAIRS:
            mix = make_mix(hp, be, n_be=9)
            for policy in (
                CacheTakeoverPolicy(), DcpQosPolicy(), DicerPolicy()
            ):
                r = run_pair(mix, policy, precision=PRECISION)
                rows.append(
                    [f"{hp}+{be}", r.policy, r.hp_norm_ipc, r.be_norm_ipc, r.efu]
                )
        return format_table(
            ["Workload", "Policy", "HP norm IPC", "BE norm IPC", "EFU"],
            rows,
            title="Related work: CT vs DCP-QoS vs DICER",
        )

    publish("related_work", benchmark.pedantic(run, rounds=1, iterations=1))
