"""Figure 1 — CDF of HP slowdown under UM and CT (9 BEs).

Paper: UM leaves ~64 % of workloads around 1.1x and ~2.5 % beyond 2x;
CT shifts the distribution left. Full population with REPRO_FULL=1.
"""

from conftest import FULL, LIMIT, RESULTS_DIR, publish

from repro.experiments.fig1 import render_fig1, run_fig1
from repro.experiments.reporting import fig1_to_csv


def bench_fig1(benchmark, store):
    data = benchmark.pedantic(
        lambda: run_fig1(store, limit_hp=LIMIT, limit_be=LIMIT),
        rounds=1,
        iterations=1,
    )
    publish("fig1", render_fig1(data))
    out = RESULTS_DIR.parent / ("results_full" if FULL else "results")
    fig1_to_csv(data, out / "fig1.csv")
