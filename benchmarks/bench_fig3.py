"""Figure 3 — HP slowdown across static LLC splits, milc + 9 gcc.

Paper: best at ~2 ways (1.09x), CT detrimental (1.45x), UM near best.
"""

from conftest import publish

from repro.experiments.fig3 import render_fig3, run_fig3


def bench_fig3(benchmark):
    data = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    publish("fig3", render_fig3(data))
