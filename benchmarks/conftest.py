"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables/figures and writes the
rendered rows/series to ``benchmarks/results/<name>.txt`` (and stdout), so
the reproduction artefacts survive the run.

Two scales:

* default — truncated populations / core grids, minutes for the whole
  harness; the *shapes* (who wins, where the crossovers sit) already hold;
* ``REPRO_FULL=1`` — the paper-scale campaign (full 3481-pair population,
  120-workload sample, cores 2..10).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.store import ResultStore

#: Quick-mode artefacts; the paper-scale campaign writes results_full/.
RESULTS_DIR = Path(__file__).parent / "results"

#: Paper-scale mode toggle.
FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: Catalog truncation for quick mode (None = full 59 entries).
LIMIT = None if FULL else 16

#: Core grid for Figures 6-8.
CORES = (2, 3, 4, 5, 6, 7, 8, 9, 10) if FULL else (2, 4, 6, 8, 10)

#: Campaign worker processes (REPRO_WORKERS: 1 = serial, 0 = auto-detect).
WORKERS = int(os.environ.get("REPRO_WORKERS", "1"))


@pytest.fixture(scope="session")
def store() -> ResultStore:
    """One memoising store for the whole harness — Figures 1 and 4-8 share
    most of their underlying executions."""
    return ResultStore(n_workers=WORKERS)


@pytest.fixture(scope="session")
def grid(store):
    """The shared Figures 4-8 campaign grid."""
    from repro.experiments.grid import build_sample, run_grid

    sample = build_sample(store, limit=LIMIT)
    return run_grid(store, sample, cores=CORES)


def publish(name: str, text: str) -> None:
    """Print a rendered table and persist it.

    Quick mode writes benchmarks/results/, the paper-scale campaign
    benchmarks/results_full/ — so a quick re-run never clobbers the
    full-campaign artefacts EXPERIMENTS.md cites.
    """
    print()
    print(text)
    out_dir = RESULTS_DIR.parent / ("results_full" if FULL else "results")
    out_dir.mkdir(exist_ok=True)
    (out_dir / f"{name}.txt").write_text(text + "\n")
