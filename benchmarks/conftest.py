"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables/figures and writes the
rendered rows/series to ``benchmarks/results/<name>.txt`` (and stdout), so
the reproduction artefacts survive the run.

Two scales:

* default — truncated populations / core grids, minutes for the whole
  harness; the *shapes* (who wins, where the crossovers sit) already hold;
* ``REPRO_FULL=1`` — the paper-scale campaign (full 3481-pair population,
  120-workload sample, cores 2..10).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.store import ResultStore

#: Quick-mode artefacts; the paper-scale campaign writes results_full/.
RESULTS_DIR = Path(__file__).parent / "results"

#: Paper-scale mode toggle.
FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: Catalog truncation for quick mode (None = full 59 entries).
LIMIT = None if FULL else 16

#: Core grid for Figures 6-8.
CORES = (2, 3, 4, 5, 6, 7, 8, 9, 10) if FULL else (2, 4, 6, 8, 10)

#: Campaign worker processes (REPRO_WORKERS: 1 = serial, 0 = auto-detect).
WORKERS = int(os.environ.get("REPRO_WORKERS", "1"))

#: Solver precision the campaign runs under (DESIGN.md §10). Benchmarks
#: default to the fast tolerance-contracted kernel — that is the mode
#: campaigns ship with; set REPRO_PRECISION=exact to time the
#: bitwise-reproducible path instead.
PRECISION = os.environ.get("REPRO_PRECISION", "fast")

#: Solver kernel implementation (DESIGN.md §12): auto / exact / fast /
#: compiled. 'auto' resolves to compiled when numba is importable.
KERNEL = os.environ.get("REPRO_KERNEL", "auto")

#: Execution pool for REPRO_WORKERS > 1: processes (default) or threads.
POOL = os.environ.get("REPRO_POOL", "processes")


@pytest.fixture(scope="session")
def store() -> ResultStore:
    """One memoising store for the whole harness — Figures 1 and 4-8 share
    most of their underlying executions."""
    return ResultStore(
        n_workers=WORKERS, precision=PRECISION, kernel=KERNEL, pool=POOL
    )


@pytest.fixture(scope="session")
def grid(store):
    """The shared Figures 4-8 campaign grid."""
    from repro.experiments.grid import build_sample, run_grid

    sample = build_sample(store, limit=LIMIT)
    return run_grid(store, sample, cores=CORES)


def publish(name: str, text: str) -> None:
    """Print a rendered table and persist it.

    Quick mode writes benchmarks/results/, the paper-scale campaign
    benchmarks/results_full/ — so a quick re-run never clobbers the
    full-campaign artefacts EXPERIMENTS.md cites.
    """
    print()
    print(text)
    out_dir = RESULTS_DIR.parent / ("results_full" if FULL else "results")
    out_dir.mkdir(exist_ok=True)
    (out_dir / f"{name}.txt").write_text(text + "\n")


# -- machine-readable perf artefact (BENCH_headline.json) -----------------

#: Session bookkeeping for the perf artefact: harness start time plus the
#: wall-clock of the headline benchmark proper (set by bench_headline).
SESSION_PERF: dict[str, float | None] = {
    "t0": None,
    "headline_wall_s": None,
}


def pytest_sessionstart(session) -> None:
    """Zero the solver counters so the artefact covers exactly this run."""
    from repro.sim.contention import reset_solver_counters

    reset_solver_counters()
    SESSION_PERF["t0"] = time.perf_counter()
    SESSION_PERF["headline_wall_s"] = None


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write benchmarks/results*/BENCH_headline.json (see compare_saves).

    Captures the whole harness: wall-clock, scalar-vs-batched solver call
    and iteration counts, batch sizes, and the steady-state memo's hit
    rate. ``compare_saves.py --bench-json`` renders and tracks it across
    runs; everything here is informational (the wall-clock regression gate
    stays with the pytest-benchmark autosaves).
    """
    if SESSION_PERF["t0"] is None:
        return
    from repro.sim.contention import GLOBAL_STEADY_CACHE, solver_counters

    counters = solver_counters()
    scalar = counters["scalar_solves"]
    batch_points = counters["batch_points"]
    batch_solves = counters["batch_solves"]
    total_points = scalar + batch_points
    cache = GLOBAL_STEADY_CACHE.stats()
    lifetime = cache.pop("lifetime")
    lookups = cache["hits"] + cache["misses"]
    payload = {
        "schema": 1,
        "full": FULL,
        "limit": LIMIT,
        "workers": WORKERS,
        "precision": PRECISION,
        "kernel": KERNEL,
        "pool": POOL if WORKERS != 1 else "serial",
        "wall_clock_s": round(time.perf_counter() - SESSION_PERF["t0"], 3),
        "headline_wall_s": (
            None
            if SESSION_PERF["headline_wall_s"] is None
            else round(SESSION_PERF["headline_wall_s"], 3)
        ),
        "solver": {
            **counters,
            "total_points": total_points,
            "python_calls": scalar + batch_solves,
            "points_per_python_call": (
                round(total_points / (scalar + batch_solves), 3)
                if scalar + batch_solves
                else None
            ),
            "scalar_call_reduction": (
                round(total_points / scalar, 3) if scalar else None
            ),
            "mean_batch_size": (
                round(batch_points / batch_solves, 3) if batch_solves else None
            ),
        },
        "steady_cache": {
            **cache,
            "hit_rate": round(cache["hits"] / lookups, 4) if lookups else None,
            "lifetime": lifetime,
        },
    }
    out_dir = RESULTS_DIR.parent / ("results_full" if FULL else "results")
    out_dir.mkdir(exist_ok=True)
    path = out_dir / "BENCH_headline.json"
    # Merge over the existing artefact so the blocks other gates own
    # (bench_fast's "fast", bench_kernel's "kernels") survive a harness
    # re-run instead of being clobbered.
    merged: dict = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            merged = {}
    merged.update(payload)
    text = json.dumps(merged, indent=2) + "\n"
    path.write_text(text)
    if not FULL:
        # Refresh the committed repo-root copy (quick mode is the
        # configuration the repo tracks; see bench_kernel.py).
        (RESULTS_DIR.parent.parent / "BENCH_headline.json").write_text(text)
    print(f"\nperf artefact: {path}")
