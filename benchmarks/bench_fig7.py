"""Figure 7 — % workloads achieving HP SLOs of 80/85/90/95 %.

Paper: DICER >= CT, especially past half occupancy; UM collapses;
DICER achieves the 80 % SLO for >90 % of workloads and the 90 % SLO
for 74 %.
"""

from conftest import publish

from repro.experiments.fig7 import extract_fig7, render_fig7


def bench_fig7(benchmark, grid):
    data = benchmark.pedantic(lambda: extract_fig7(grid), rounds=1, iterations=1)
    publish("fig7", render_fig7(data))
