#!/usr/bin/env python
"""Fast-math solver speedup gate (``make bench-fast``).

Times the steady-state solver kernel over the paper-scale operating-point
population — every pair of the 59-app catalog (the Figure 1 / CT
classification sweep's 3481 mixes) under the unmanaged partition and four
HP/BE splits — once with the bitwise-exact kernel and once with the
tolerance-contracted fast kernel (DESIGN.md §10), both as one fused batch
per mode, exactly how fast-mode campaigns submit work.

Reports ``fast_speedup = exact_wall / fast_wall`` (best-of-N per mode),
verifies the fast results against the exact ones with the runtime accuracy
contract, merges the numbers into ``BENCH_headline.json`` (top-level
``fast_speedup`` plus a ``fast`` detail block), and exits non-zero when the
speedup lands below ``--min-speedup`` (default 5.0; quick mode relaxes the
floor because narrow populations amortise the batch setup worse).

Usage::

    python benchmarks/bench_fast.py                  # full 3481-pair gate
    python benchmarks/bench_fast.py --quick          # truncated, floor 3.0
    python benchmarks/bench_fast.py --min-speedup 4
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from pathlib import Path

#: Default artefact the speedup is merged into.
DEFAULT_BENCH_JSON = Path(__file__).parent / "results" / "BENCH_headline.json"

#: HP way splits sampled per pair (plus the unmanaged partition) — the
#: corners of DICER's sampling grid on the Table-1 platform.
HP_WAY_SPLITS = (5, 9, 13, 17)

#: Acceptance floors. Quick mode shrinks the population ~8x, so per-batch
#: setup overhead weighs heavier and the floor relaxes accordingly.
MIN_SPEEDUP_FULL = 5.0
MIN_SPEEDUP_QUICK = 3.0


def build_population(limit: int | None = None) -> list[tuple]:
    """Operating points of the full pair grid (phases, partition, mba)."""
    from repro.sim.partition import PartitionSpec
    from repro.sim.platform import TABLE1_PLATFORM
    from repro.workloads.catalog import app_names
    from repro.workloads.mix import make_mix

    names = app_names()[:limit]
    points: list[tuple] = []
    for hp, be in itertools.product(names, names):
        mix = make_mix(hp, be, n_be=9)
        phases = tuple(app.phases[0] for app in mix.apps())
        n = len(phases)
        partitions = [
            PartitionSpec.unmanaged(n, TABLE1_PLATFORM.llc_ways)
        ] + [
            PartitionSpec.hp_be(
                w, n_cores=n, total_ways=TABLE1_PLATFORM.llc_ways
            )
            for w in HP_WAY_SPLITS
        ]
        for partition in partitions:
            points.append((phases, partition, None))
    return points


def time_mode(points: list[tuple], precision: str, rounds: int) -> tuple:
    """(best wall seconds, results) for one fused batch in ``precision``."""
    from repro.sim.contention import solve_steady_state_batch
    from repro.sim.platform import TABLE1_PLATFORM

    best = None
    results = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        results = solve_steady_state_batch(
            TABLE1_PLATFORM, points, precision=precision
        )
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    return best, results


def check_contract(fast, exact) -> tuple[int, float]:
    """(violation count, worst relative IPC error) across the population."""
    import numpy as np

    from repro.sim.contention import _fast_contract_violations

    violations = 0
    worst = 0.0
    for f, e in zip(fast, exact):
        if _fast_contract_violations(f, e):
            violations += 1
        worst = max(
            worst,
            float(np.max(np.abs(f.ipc - e.ipc) / np.abs(e.ipc))),
        )
    return violations, worst


def merge_artefact(path: Path, fast_block: dict) -> None:
    """Fold the speedup into BENCH_headline.json (create it if absent)."""
    payload: dict = {"schema": 1}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            pass  # keep the artefact usable even over a torn previous write
    payload["fast_speedup"] = fast_block["speedup"]
    payload["fast"] = fast_block
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="truncate the catalog to 16 apps (~1280 points) and relax "
        f"the floor to {MIN_SPEEDUP_QUICK}x",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="acceptance floor for exact/fast wall-clock ratio "
        f"(default {MIN_SPEEDUP_FULL}, quick {MIN_SPEEDUP_QUICK})",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="timing rounds per mode; the best round counts (default 3)",
    )
    parser.add_argument(
        "--bench-json",
        type=Path,
        default=DEFAULT_BENCH_JSON,
        metavar="PATH",
        help="BENCH_headline.json to merge fast_speedup into",
    )
    args = parser.parse_args(argv)
    floor = args.min_speedup
    if floor is None:
        floor = MIN_SPEEDUP_QUICK if args.quick else MIN_SPEEDUP_FULL

    points = build_population(limit=16 if args.quick else None)
    pairs = len(points) // (1 + len(HP_WAY_SPLITS))
    print(
        f"fast-math gate: {len(points)} operating points "
        f"({pairs} pairs x {1 + len(HP_WAY_SPLITS)} partitions, "
        f"{'quick' if args.quick else 'full'} population)"
    )

    t_exact, exact = time_mode(points, "exact", args.rounds)
    t_fast, fast = time_mode(points, "fast", args.rounds)
    speedup = t_exact / t_fast
    violations, worst = check_contract(fast, exact)

    print(
        f"  exact: {t_exact:.3f}s   fast: {t_fast:.3f}s   "
        f"speedup: {speedup:.2f}x (floor {floor}x)"
    )
    print(
        f"  accuracy contract: {violations} violation(s), "
        f"worst |ipc rel err| {worst:.3e}"
    )

    merge_artefact(
        args.bench_json,
        {
            "speedup": round(speedup, 3),
            "exact_wall_s": round(t_exact, 4),
            "fast_wall_s": round(t_fast, 4),
            "n_points": len(points),
            "quick": args.quick,
            "rounds": args.rounds,
            "contract_violations": violations,
            "worst_ipc_rel_err": float(f"{worst:.6e}"),
        },
    )
    print(f"  merged into {args.bench_json}")

    if violations:
        print(f"FAIL: {violations} point(s) broke the accuracy contract")
        return 1
    if speedup < floor:
        print(f"FAIL: speedup {speedup:.2f}x below the {floor}x floor")
        return 1
    print("OK: fast kernel clears the speedup floor with the contract held")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.exit(main())
