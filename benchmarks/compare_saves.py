#!/usr/bin/env python
"""Regression gate over pytest-benchmark autosaves.

``make bench-quick`` runs the benchmark suite with ``--benchmark-autosave``
and then invokes this script, which compares the two most recent saves
(newest vs. its predecessor) benchmark-by-benchmark and fails — exit code
1 — when any shared benchmark's median wall-clock regressed by more than
the threshold (default 25 %). With fewer than two saves there is nothing
to compare and the gate passes trivially.

Usage::

    python benchmarks/compare_saves.py [--threshold 0.25] [--storage DIR]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def find_saves(storage: Path) -> list[Path]:
    """All autosave files, oldest first (autosaves are counter-prefixed)."""
    return sorted(storage.glob("*/*.json"))


def load_medians(path: Path) -> dict[str, float]:
    """Map benchmark name -> median seconds for one save file."""
    payload = json.loads(path.read_text())
    return {
        bench["name"]: float(bench["stats"]["median"])
        for bench in payload.get("benchmarks", [])
    }


def compare(
    previous: dict[str, float],
    latest: dict[str, float],
    threshold: float,
) -> tuple[list[str], list[str]]:
    """(report lines, offending benchmark names) for the shared set."""
    lines: list[str] = []
    offenders: list[str] = []
    shared = sorted(set(previous) & set(latest))
    for name in shared:
        old, new = previous[name], latest[name]
        ratio = new / old if old > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + threshold:
            offenders.append(name)
            flag = f"  <-- REGRESSION (> {threshold:.0%})"
        lines.append(
            f"{name}: {old:.3f}s -> {new:.3f}s "
            f"({ratio - 1.0:+.1%} vs old){flag}"
        )
    for name in sorted(set(latest) - set(previous)):
        lines.append(f"{name}: (new benchmark, {latest[name]:.3f}s)")
    return lines, offenders


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated relative median slowdown (default 0.25)",
    )
    parser.add_argument(
        "--storage",
        type=Path,
        default=Path(".benchmarks"),
        help="pytest-benchmark storage directory (default ./.benchmarks)",
    )
    args = parser.parse_args(argv)

    saves = find_saves(args.storage)
    if len(saves) < 2:
        print(
            f"benchmark gate: {len(saves)} save(s) under {args.storage}; "
            "need 2 to compare — passing trivially"
        )
        return 0

    previous, latest = saves[-2], saves[-1]
    print(f"benchmark gate: {previous.name} (old) vs {latest.name} (new)")
    lines, offenders = compare(
        load_medians(previous), load_medians(latest), args.threshold
    )
    for line in lines:
        print(f"  {line}")
    if offenders:
        print(
            f"FAIL: {len(offenders)} benchmark(s) regressed by more than "
            f"{args.threshold:.0%}: {', '.join(offenders)}"
        )
        return 1
    print("OK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
