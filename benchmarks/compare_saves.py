#!/usr/bin/env python
"""Regression gate over pytest-benchmark autosaves.

``make bench-quick`` runs the benchmark suite with ``--benchmark-autosave``
and then invokes this script, which compares the two most recent saves
(newest vs. its predecessor) benchmark-by-benchmark and fails — exit code
1 — when any shared benchmark's median wall-clock regressed by more than
the threshold (default 25 %). With fewer than two saves there is nothing
to compare and the gate passes trivially.

With ``--bench-json PATH`` it additionally renders the machine-readable
perf artefact the benchmark harness writes (``BENCH_headline.json``:
wall-clock, scalar-vs-batched solver calls, batch sizes, memo hit rate),
compares it against the previous run recorded in ``BENCH_history.jsonl``
next to it, and appends the current run to that history. The JSON report
is informational — only the autosave medians gate.

With ``--store PATH`` it instead (or additionally) describes a persisted
result-store artefact — either backend: the checksummed JSON file or the
SQLite database — printing the engine, row count, precision stamp and
the backend-independent canonical content digest, so two campaign
artefacts can be compared for equality regardless of which engine or how
many queue workers wrote them.

Usage::

    python benchmarks/compare_saves.py [--threshold 0.25] [--storage DIR]
        [--bench-json benchmarks/results/BENCH_headline.json]
        [--store results.db [--store other.json ...]]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def find_saves(storage: Path) -> list[Path]:
    """All autosave files, oldest first (autosaves are counter-prefixed)."""
    return sorted(storage.glob("*/*.json"))


def load_medians(path: Path) -> dict[str, float]:
    """Map benchmark name -> median seconds for one save file."""
    payload = json.loads(path.read_text())
    return {
        bench["name"]: float(bench["stats"]["median"])
        for bench in payload.get("benchmarks", [])
    }


def compare(
    previous: dict[str, float],
    latest: dict[str, float],
    threshold: float,
) -> tuple[list[str], list[str]]:
    """(report lines, offending benchmark names) for the shared set."""
    lines: list[str] = []
    offenders: list[str] = []
    shared = sorted(set(previous) & set(latest))
    for name in shared:
        old, new = previous[name], latest[name]
        ratio = new / old if old > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + threshold:
            offenders.append(name)
            flag = f"  <-- REGRESSION (> {threshold:.0%})"
        lines.append(
            f"{name}: {old:.3f}s -> {new:.3f}s "
            f"({ratio - 1.0:+.1%} vs old){flag}"
        )
    for name in sorted(set(latest) - set(previous)):
        lines.append(f"{name}: (new benchmark, {latest[name]:.3f}s)")
    return lines, offenders


def report_bench_json(path: Path, history: Path | None = None) -> list[str]:
    """Render one BENCH_headline.json, diffed against the tracked history.

    Returns the report lines (also useful for tests); appends the current
    payload to ``history`` (default: ``BENCH_history.jsonl`` next to the
    artefact) so successive runs can be compared. Never gates.

    Schema drift is tolerated in both directions: rows written before a
    field existed (older histories have no ``precision``, no fast-kernel
    counters, no ``fast`` block) read as absent and render without a
    previous value, and fields this version does not know about are
    simply carried along in the history. Every row appended here records
    the solver ``precision`` it ran under (absent = the pre-fast-math
    era, i.e. "exact").
    """
    payload = json.loads(path.read_text())
    payload.setdefault("precision", "exact")
    history = history or path.with_name("BENCH_history.jsonl")
    previous = None
    if history.exists():
        lines = [ln for ln in history.read_text().splitlines() if ln.strip()]
        if lines:
            try:
                previous = json.loads(lines[-1])
            except json.JSONDecodeError:
                previous = None  # torn last line: diff against nothing
    if not isinstance(previous, dict):
        previous = None

    solver = payload.get("solver", {})
    if not isinstance(solver, dict):
        solver = {}
    cache = payload.get("steady_cache", {})
    if not isinstance(cache, dict):
        cache = {}
    report = [f"perf artefact: {path}"]

    def fmt(label: str, value, prev_value, unit: str = "") -> str:
        line = f"{label}: {value}{unit}"
        if isinstance(value, (int, float)) and isinstance(
            prev_value, (int, float)
        ) and prev_value:
            change = value / prev_value - 1.0
            line += f" (prev {prev_value}{unit}, {change:+.1%})"
        return line

    prev_solver = (previous or {}).get("solver", {})
    if not isinstance(prev_solver, dict):
        prev_solver = {}
    prev_cache = (previous or {}).get("steady_cache", {})
    if not isinstance(prev_cache, dict):
        prev_cache = {}
    prev_precision = (previous or {}).get("precision", "exact")
    report.append(f"  precision: {payload['precision']}")
    if previous is not None and prev_precision != payload["precision"]:
        report.append(
            f"  (previous run used precision={prev_precision} — "
            "wall-clock deltas compare different solver modes)"
        )
    # Kernel / pool stamps (rows older than the kernel registry carry
    # neither; absent reads as the pre-registry defaults).
    kernel = payload.get("kernel", "fast")
    pool = payload.get("pool", "serial")
    report.append(f"  kernel: {kernel}   pool: {pool}")
    prev_kernel = (previous or {}).get("kernel", "fast")
    prev_pool = (previous or {}).get("pool", "serial")
    if previous is not None and (kernel, pool) != (prev_kernel, prev_pool):
        report.append(
            f"  (previous run used kernel={prev_kernel} pool={prev_pool} — "
            "wall-clock deltas compare different execution modes)"
        )
    report.append(
        fmt("  wall_clock", payload.get("wall_clock_s"),
            (previous or {}).get("wall_clock_s"), "s")
    )
    for key in (
        "total_points",
        "scalar_solves",
        "batch_solves",
        "fast_solves",
        "fast_points",
        "mean_batch_size",
        "points_per_python_call",
        "scalar_call_reduction",
        "scalar_iterations",
        "batch_iterations",
        "fast_iterations",
        "compiled_solves",
        "compiled_points",
        "compiled_iterations",
        "params_memo_hits",
        "params_memo_misses",
        "params_memo_evictions",
    ):
        value = solver.get(key)
        if value is None and prev_solver.get(key) is None:
            continue  # field absent on both sides (older schema)
        report.append(fmt(f"  solver.{key}", value, prev_solver.get(key)))
    report.append(
        fmt("  steady_cache.hit_rate", cache.get("hit_rate"),
            prev_cache.get("hit_rate"))
    )
    if payload.get("fast_speedup") is not None or (
        previous or {}
    ).get("fast_speedup") is not None:
        report.append(
            fmt("  fast_speedup", payload.get("fast_speedup"),
                (previous or {}).get("fast_speedup"), "x")
        )
    if payload.get("compiled_speedup") is not None or (
        previous or {}
    ).get("compiled_speedup") is not None:
        report.append(
            fmt("  compiled_speedup", payload.get("compiled_speedup"),
                (previous or {}).get("compiled_speedup"), "x")
        )
    kernels_block = payload.get("kernels")
    if isinstance(kernels_block, dict) and not kernels_block.get(
        "numba", True
    ):
        report.append(
            "  (compiled kernel unavailable in this environment — "
            "numba not installed; pip install .[compiled])"
        )

    with history.open("a") as fh:
        # A torn previous write may have left the file without a trailing
        # newline; never glue the new row onto it.
        if history.stat().st_size and not history.read_text().endswith("\n"):
            fh.write("\n")
        fh.write(json.dumps(payload) + "\n")
    return report


def describe_store(path: Path) -> list[str]:
    """Describe one persisted result store, whichever backend wrote it."""
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.experiments.backends import open_backend

    backend = open_backend(path)
    if not backend.exists():
        return [f"store artefact: {path} missing"]
    loaded = backend.load()
    lines = [
        f"store artefact: {path}",
        f"  backend: {backend.kind}",
        f"  rows: {len(loaded.rows)}",
        f"  precision: {loaded.precision or '-'}",
        f"  digest: {backend.digest()}",
    ]
    if loaded.salvaged or loaded.corrupt_files:
        lines.append(
            f"  WARNING: artefact was corrupt "
            f"(salvaged={loaded.salvaged}, files={loaded.corrupt_files})"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated relative median slowdown (default 0.25)",
    )
    parser.add_argument(
        "--storage",
        type=Path,
        default=Path(".benchmarks"),
        help="pytest-benchmark storage directory (default ./.benchmarks)",
    )
    parser.add_argument(
        "--bench-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="render + track a BENCH_headline.json perf artefact "
        "(informational, never gates)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        action="append",
        default=None,
        metavar="PATH",
        help="describe a persisted result store (file or sqlite backend): "
        "engine, rows, precision, canonical digest; repeatable — equal "
        "digests mean equal campaign contents (informational, never gates)",
    )
    args = parser.parse_args(argv)

    if args.store:
        for store_path in args.store:
            for line in describe_store(store_path):
                print(line)
        if args.bench_json is None:
            return 0

    if args.bench_json is not None:
        if args.bench_json.exists():
            for line in report_bench_json(args.bench_json):
                print(line)
        else:
            print(f"perf artefact: {args.bench_json} missing — skipping")

    saves = find_saves(args.storage)
    if len(saves) < 2:
        print(
            f"benchmark gate: {len(saves)} save(s) under {args.storage}; "
            "need 2 to compare — passing trivially"
        )
        return 0

    previous, latest = saves[-2], saves[-1]
    print(f"benchmark gate: {previous.name} (old) vs {latest.name} (new)")
    lines, offenders = compare(
        load_medians(previous), load_medians(latest), args.threshold
    )
    for line in lines:
        print(f"  {line}")
    if offenders:
        print(
            f"FAIL: {len(offenders)} benchmark(s) regressed by more than "
            f"{args.threshold:.0%}: {', '.join(offenders)}"
        )
        return 1
    print("OK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
