"""Figure 6 — geomean effective utilisation vs employed cores.

Paper: UM highest, CT collapses with core count, DICER close to UM
(~0.6 at the full 10-core server).
"""

from conftest import FULL, RESULTS_DIR, publish

from repro.experiments.fig6 import extract_fig6, render_fig6
from repro.experiments.reporting import grid_to_csv


def bench_fig6(benchmark, grid):
    data = benchmark.pedantic(lambda: extract_fig6(grid), rounds=1, iterations=1)
    publish("fig6", render_fig6(data))
    out = RESULTS_DIR.parent / ("results_full" if FULL else "results")
    grid_to_csv(grid, out / "grid.csv")
