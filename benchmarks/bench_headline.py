"""The paper's headline claims (abstract / Section 4.2) vs this
reproduction: SLO-80 share, SLO-90 share, full-server EFU, CT-T share."""

import time

from conftest import LIMIT, SESSION_PERF, publish

from repro.experiments.ablation import sweep_classification_threshold  # noqa: F401
from repro.experiments.classify import CT_F_THRESHOLD, classify_all
from repro.experiments.headline import evaluate_headlines, render_headlines
from repro.workloads.catalog import app_names


def bench_headline(benchmark, store, grid):
    def run():
        names = app_names()[:LIMIT]
        classes = classify_all(store, hp_names=names, be_names=names)
        ctt = sum(1 for c in classes if not c.ct_favoured) / len(classes)
        return evaluate_headlines(grid, ctt_fraction=ctt)

    t0 = time.perf_counter()
    claims = benchmark.pedantic(run, rounds=1, iterations=1)
    SESSION_PERF["headline_wall_s"] = time.perf_counter() - t0
    publish("headline", render_headlines(claims))
