"""Section 2.3.3 — CT-Favoured / CT-Thwarted population split.

Paper: ~60 % of the 3481 pairs are CT-Thwarted. The sweep also reports
how the split moves with the materiality threshold (an ablation the
hardware paper's measurement noise made implicit).
"""

from conftest import LIMIT, publish

from repro.experiments.ablation import sweep_classification_threshold
from repro.sim.contention import GLOBAL_STEADY_CACHE


def bench_classification(benchmark, store):
    text = benchmark.pedantic(
        lambda: sweep_classification_threshold(store, limit=LIMIT),
        rounds=1,
        iterations=1,
    )
    cache = GLOBAL_STEADY_CACHE.stats()
    print(
        f"\n[steady-state memo] hits={cache['hits']} "
        f"misses={cache['misses']} size={cache['size']} | "
        f"[store] workers={store.n_workers} {store.stats()}"
    )
    publish("classification", text)
