"""Figure 5 — normalised HP/BE IPC per workload and class, UM/CT/DICER.

Paper: DICER tracks CT on CT-Favoured workloads and UM on CT-Thwarted
ones, and always lifts BE throughput over CT.
"""

from conftest import publish

from repro.experiments.fig5 import extract_fig5, render_fig5


def bench_fig5(benchmark, grid):
    data = benchmark.pedantic(
        lambda: extract_fig5(grid, n_cores=max(grid.cores)),
        rounds=1,
        iterations=1,
    )
    publish("fig5", render_fig5(data))
