"""Parameter-sensitivity ablations (the analysis Section 4.1 mentions but
omits): saturation threshold, alpha, phase threshold, sampling grid,
resampling cooldown."""

from conftest import publish

from repro.experiments.ablation import (
    sweep_alpha,
    sweep_bw_threshold,
    sweep_cooldown,
    sweep_noise_robustness,
    sweep_phase_threshold,
    sweep_sampling_grid,
)


def bench_ablation_bw_threshold(benchmark):
    publish("ablation_bw", benchmark.pedantic(sweep_bw_threshold, rounds=1, iterations=1))


def bench_ablation_alpha(benchmark):
    publish("ablation_alpha", benchmark.pedantic(sweep_alpha, rounds=1, iterations=1))


def bench_ablation_phase(benchmark):
    publish("ablation_phase", benchmark.pedantic(sweep_phase_threshold, rounds=1, iterations=1))


def bench_ablation_grid(benchmark):
    publish("ablation_grid", benchmark.pedantic(sweep_sampling_grid, rounds=1, iterations=1))


def bench_ablation_cooldown(benchmark):
    publish("ablation_cooldown", benchmark.pedantic(sweep_cooldown, rounds=1, iterations=1))


def bench_ablation_noise(benchmark):
    """Measurement noise vs alpha (hardware-robustness study)."""
    publish(
        "ablation_noise",
        benchmark.pedantic(sweep_noise_robustness, rounds=1, iterations=1),
    )
