#!/usr/bin/env python
"""Self-checking smoke test for the shared campaign queue.

Runs a small real campaign three ways — two concurrent ``dicer-repro
campaign`` worker processes draining one queue into one shared SQLite
store, a serial SQLite store, and a serial JSON-file store — and fails
(exit 1) unless all three artefacts carry the same canonical content
digest and the queue reports every cell done exactly once. This is the
acceptance property of DESIGN.md §11 run end-to-end through the real
CLI; ``make queue-smoke`` wires it into ``make all``.

Usage::

    python benchmarks/queue_smoke.py [--limit 2] [--cores 3] [--workers 2]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))


def _run_worker(args: list[str], env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.cli", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--limit", type=int, default=2)
    parser.add_argument("--cores", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent worker processes (default 2)")
    args = parser.parse_args(argv)

    import os

    from repro.experiments.backends import open_backend
    from repro.experiments.queue import CampaignQueue

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")

    with tempfile.TemporaryDirectory(prefix="queue-smoke-") as tmp:
        tmpdir = Path(tmp)
        queue_db = tmpdir / "q.db"
        store_db = tmpdir / "results.db"
        campaign = [
            "campaign", "--queue", str(queue_db), "--store", str(store_db),
            "--limit", str(args.limit), "--cores", str(args.cores),
            "--precision", "fast", "--claim-batch", "2",
        ]
        procs = [
            _run_worker(campaign + ["--worker-id", f"smoke-w{i}"], env)
            for i in range(1, args.workers + 1)
        ]
        failed = False
        for proc in procs:
            out, _ = proc.communicate(timeout=600)
            sys.stdout.write(out)
            if proc.returncode != 0:
                print(f"FAIL: worker exited rc={proc.returncode}")
                failed = True
        if failed:
            return 1

        snapshot = CampaignQueue(queue_db).snapshot()
        if not snapshot.terminal or snapshot.failed or snapshot.done == 0:
            print(f"FAIL: queue did not drain clean: {snapshot}")
            return 1

        # Serial references: the exact workload a campaign worker runs
        # (classification sample + canonical grid), one per backend.
        from repro.experiments.grid import build_sample, grid_cells
        from repro.experiments.store import ResultStore

        for name in ("serial.db", "serial.json"):
            store = ResultStore(
                cache_path=tmpdir / name, precision="fast"
            )
            sample = build_sample(store, limit=args.limit)
            store.get_many(grid_cells(sample, cores=(args.cores,)))
            store.save()

        digests = {
            path.name: open_backend(tmpdir / path.name).digest()
            for path in (store_db, tmpdir / "serial.db",
                         tmpdir / "serial.json")
        }
        for name, digest in sorted(digests.items()):
            print(f"digest {name}: {digest}")
        if len(set(digests.values())) != 1:
            print(
                f"FAIL: {args.workers}-worker queue store diverged from "
                "the serial references"
            )
            return 1
        print(
            f"OK: {args.workers} workers, {snapshot.done} cells, "
            f"{snapshot.steals} steal(s) — queue store byte-identical to "
            "serial file and sqlite references"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
