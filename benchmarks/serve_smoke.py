#!/usr/bin/env python
"""Self-checking smoke test for the ``repro.serve`` control plane.

The determinism contract of DESIGN.md §14, run end-to-end through the
real CLI:

1. generate a seeded churn stream (1000+ submit/depart events);
2. run it clean through the serve daemon → the reference digest;
3. weave seeded chaos into the same stream (node crash + hang +
   partition, each with a recover, plus transient placement faults);
4. run the chaos stream, SIGTERM-kill the daemon mid-run, restart it,
   and let it drain;

then fail (exit 1) unless the interrupted chaos run's terminal placement
digest is byte-identical to the clean run's, and no job was dropped —
every submission is either placed, pending, departed, or explicitly
rejected by admission. ``make serve-smoke`` wires this into ``make
all``.

Usage::

    python benchmarks/serve_smoke.py [--events 1200] [--nodes 3]
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))


def _serve(args: list[str], env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.cli", "serve", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _run(args: list[str], env: dict, *, timeout: float = 600.0) -> str:
    proc = _serve(args, env)
    out, _ = proc.communicate(timeout=timeout)
    sys.stdout.write(out)
    if proc.returncode != 0:
        raise RuntimeError(f"serve {args[0]} exited rc={proc.returncode}")
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=1200)
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--throttle-s", type=float, default=0.004,
        help="chaos-run pacing so the SIGTERM lands mid-stream",
    )
    args = parser.parse_args(argv)
    if args.events < 1000:
        print("FAIL: the contract is a 1000+-event churn run")
        return 1

    import os

    from repro.serve.snapshot import load_snapshot

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    seed = [] if args.seed is None else ["--seed", str(args.seed)]
    nodes = ["--nodes", str(args.nodes)]

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        tmpdir = Path(tmp)
        base = tmpdir / "base.jsonl"
        chaos = tmpdir / "chaos.jsonl"
        plan_path = tmpdir / "plan.json"

        _run(
            ["loadgen", "--out", str(base), "--events", str(args.events)]
            + seed,
            env,
        )
        _run(
            ["chaos", "--base", str(base), "--out", str(chaos),
             "--plan", str(plan_path)] + seed + nodes,
            env,
        )
        plan = json.loads(plan_path.read_text())
        if plan["counts"].get("node_crash", 0) < 1:
            print("FAIL: chaos plan carries no node crash")
            return 1
        n_chaos_events = sum(1 for _ in chaos.open())

        # Clean reference: the base stream, uninterrupted, no faults.
        _run(
            ["run", "--events", str(base),
             "--snapshot", str(tmpdir / "clean_snap.json"),
             "--summary", str(tmpdir / "clean.json")] + nodes,
            env,
        )
        clean = json.loads((tmpdir / "clean.json").read_text())

        # Chaos run, phase 1: throttled so we can SIGTERM it mid-stream.
        snap = tmpdir / "snap.json"
        run_args = [
            "run", "--events", str(chaos), "--snapshot", str(snap),
            "--summary", str(tmpdir / "chaos1.json"),
            "--snapshot-every", "25",
        ] + nodes
        proc = _serve(run_args + ["--throttle-s", str(args.throttle_s)], env)
        kill_after = max(50, plan["kill_seq"] // 2)
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            state = load_snapshot(snap)
            if state is not None and state["applied_seq"] >= kill_after:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.01)
        killed = proc.poll() is None
        if killed:
            proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=600)
        sys.stdout.write(out)
        if proc.returncode != 0:
            print(f"FAIL: chaos run (phase 1) exited rc={proc.returncode}")
            return 1
        state = load_snapshot(snap)
        if not killed or state["applied_seq"] + 1 >= n_chaos_events:
            print(
                "FAIL: SIGTERM landed after the run drained "
                f"(applied_seq={state['applied_seq']}, "
                f"events={n_chaos_events}) — raise --throttle-s"
            )
            return 1
        print(
            f"killed daemon at applied_seq={state['applied_seq']} "
            f"of {n_chaos_events - 1}"
        )

        # Phase 2: restart on the same snapshot; it must resume and drain.
        out = _run(run_args, env)
        if "resumed from snapshot" not in out:
            print("FAIL: restarted daemon did not resume from the snapshot")
            return 1
        chaos_summary = json.loads((tmpdir / "chaos1.json").read_text())

        failures = []
        if chaos_summary["digest"] != clean["digest"]:
            failures.append(
                "terminal digest diverged: chaos "
                f"{chaos_summary['digest']} != clean {clean['digest']}"
            )
        if chaos_summary["applied_seq"] != n_chaos_events - 1:
            failures.append(
                f"stream not drained: {chaos_summary['applied_seq']} "
                f"!= {n_chaos_events - 1}"
            )
        counters = chaos_summary["counters"]
        jobs = chaos_summary["jobs"]
        accounted = sum(jobs.values())
        if counters["submitted"] != accounted:
            failures.append(
                f"dropped jobs: {counters['submitted']} submitted but "
                f"only {accounted} accounted for ({jobs})"
            )
        if counters["accepted"] + counters["rejected"] != counters["submitted"]:
            failures.append(
                "admission leak: accepted + rejected != submitted"
            )
        if counters["node_crashes"] < 1 or counters["node_recoveries"] < 1:
            failures.append("chaos run saw no crash/recover cycle")
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print(
            f"OK: {args.events}-event churn, "
            f"{counters['node_crashes']} crash / "
            f"{counters['node_hangs']} hang / "
            f"{counters['node_partitions']} partition, "
            "SIGTERM kill + restart — terminal digest identical to the "
            f"clean run ({clean['digest'][:16]}…), "
            f"{counters['submitted']} jobs all accounted for "
            f"({jobs['rejected']} rejected by admission, 0 dropped)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
