"""Table 1 — system configuration (regenerated from the live defaults)."""

from conftest import publish

from repro.experiments.table1 import render_table1


def bench_table1(benchmark):
    text = benchmark(render_table1)
    publish("table1", text)
