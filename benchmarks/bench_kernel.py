#!/usr/bin/env python
"""Kernel registry + thread-pool gate (``make bench-kernel``).

Exercises the solver kernel registry (DESIGN.md §12) over the paper-scale
operating-point population — the same full 3481-pair fused grid
``bench_fast.py`` times — and the thread-pool execution mode end to end:

* times the ``fast`` (NumPy) and, when numba is importable, ``compiled``
  kernels over one fused batch and enforces a compiled-over-fast speedup
  floor (default 2.0x full / 1.2x quick);
* verifies whichever fast-precision kernel ran against the bitwise-exact
  results with the runtime accuracy contract — **zero violations is a
  hard gate in every environment**;
* runs one small real campaign three ways (serial, ``pool="threads"``,
  ``pool="processes"``) through :class:`~repro.experiments.store.
  ResultStore` and requires all three artefacts to carry the same
  canonical content digest — thread-pool results must be
  digest-identical to serial;
* enforces a threads-vs-processes wall-clock ratio floor when the
  GIL-releasing compiled kernel is available (thread mode exists for it);
* merges everything into ``BENCH_headline.json`` (top-level
  ``compiled_speedup`` plus a ``kernels`` detail block) and refreshes the
  committed repo-root copy of the artefact.

When numba is absent (the ``compiled`` kernel falls back to ``fast``;
``pip install .[compiled]`` enables it) the speedup floors are waived
with a printed notice — the contract and digest gates still apply.

Usage::

    python benchmarks/bench_kernel.py             # full 3481-pair gate
    python benchmarks/bench_kernel.py --quick     # truncated population
    python benchmarks/bench_kernel.py --min-speedup 3
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_fast import build_population, check_contract, time_mode  # noqa: E402

#: Default artefact the kernel numbers are merged into.
DEFAULT_BENCH_JSON = Path(__file__).parent / "results" / "BENCH_headline.json"

#: Committed repo-root copy of the artefact (refreshed on every run).
ROOT_BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_headline.json"

#: Compiled-over-fast acceptance floors (waived when numba is absent).
MIN_COMPILED_FULL = 2.0
MIN_COMPILED_QUICK = 1.2

#: Threads-vs-processes wall-clock floor: with the GIL-releasing compiled
#: kernel a thread campaign must take no more than 1/MIN_THREAD_RATIO of
#: the process campaign's wall (i.e. processes_wall / threads_wall >=
#: MIN_THREAD_RATIO). Waived without numba — a GIL-bound thread pool
#: serialises the solves and only the digest gate applies.
MIN_THREAD_RATIO = 0.8


def time_kernel(points: list[tuple], kernel: str, rounds: int) -> tuple:
    """(best wall seconds, results) for one fused fast batch on ``kernel``."""
    from repro.sim.contention import solve_steady_state_batch
    from repro.sim.kernels import use_kernel
    from repro.sim.platform import TABLE1_PLATFORM

    best = None
    results = None
    with use_kernel(kernel):
        # Warm-up on a slice first: the compiled kernel pays its JIT /
        # cache-load cost here instead of inside the timed rounds.
        solve_steady_state_batch(
            TABLE1_PLATFORM, points[: min(8, len(points))], precision="fast"
        )
        for _ in range(rounds):
            t0 = time.perf_counter()
            results = solve_steady_state_batch(
                TABLE1_PLATFORM, points, precision="fast"
            )
            wall = time.perf_counter() - t0
            best = wall if best is None else min(best, wall)
    return best, results


def campaign_run(
    tmpdir: Path,
    name: str,
    *,
    workers: int,
    pool: str,
    limit: int,
    cores: int,
) -> tuple[str, float]:
    """(canonical digest, wall seconds) of one small real campaign.

    The same workload a queue worker drains (classification sample +
    canonical grid), run through ResultStore with the given pool so the
    digest covers the full supervised path, not just the solver.
    """
    from repro.experiments.backends import open_backend
    from repro.experiments.grid import build_sample, grid_cells
    from repro.experiments.store import ResultStore
    from repro.sim.contention import GLOBAL_STEADY_CACHE

    # Each run starts from a cold shared memo so thread mode cannot
    # coast on the previous run's in-process cache entries.
    GLOBAL_STEADY_CACHE.clear()
    path = tmpdir / name
    store = ResultStore(
        cache_path=path,
        n_workers=workers,
        precision="fast",
        pool=pool,
    )
    t0 = time.perf_counter()
    sample = build_sample(store, limit=limit)
    store.get_many(grid_cells(sample, cores=(cores,)))
    wall = time.perf_counter() - t0
    store.save()
    return open_backend(path).digest(), wall


def merge_artefact(path: Path, kernel_block: dict) -> dict:
    """Fold the kernel numbers into BENCH_headline.json; return the payload."""
    payload: dict = {"schema": 1}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            pass  # keep the artefact usable even over a torn previous write
    payload["compiled_speedup"] = kernel_block["compiled_speedup"]
    payload["kernels"] = kernel_block
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="truncate the catalog to 16 apps (~1280 points) and relax "
        f"the compiled floor to {MIN_COMPILED_QUICK}x",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="acceptance floor for fast/compiled wall-clock ratio "
        f"(default {MIN_COMPILED_FULL}, quick {MIN_COMPILED_QUICK})",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="timing rounds per kernel; the best round counts (default 3)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="pool width for the threads/processes campaign legs "
        "(default 4)",
    )
    parser.add_argument(
        "--bench-json",
        type=Path,
        default=DEFAULT_BENCH_JSON,
        metavar="PATH",
        help="BENCH_headline.json to merge the kernel block into "
        "(the repo-root copy is refreshed as well)",
    )
    args = parser.parse_args(argv)

    from repro.sim.kernels import available_kernels, numba_available

    has_numba = numba_available()
    floor = args.min_speedup
    if floor is None:
        floor = MIN_COMPILED_QUICK if args.quick else MIN_COMPILED_FULL

    points = build_population(limit=16 if args.quick else None)
    print(
        f"kernel gate: {len(points)} operating points "
        f"({'quick' if args.quick else 'full'} population), "
        f"kernels available: {', '.join(available_kernels())}"
    )

    # Exact results only anchor the accuracy contract — one round.
    _, exact = time_mode(points, "exact", 1)
    t_fast, fast = time_kernel(points, "fast", args.rounds)
    if has_numba:
        t_compiled, compiled = time_kernel(points, "compiled", args.rounds)
        compiled_speedup = t_fast / t_compiled
        violations, worst = check_contract(compiled, exact)
        print(
            f"  fast: {t_fast:.3f}s   compiled: {t_compiled:.3f}s   "
            f"speedup: {compiled_speedup:.2f}x (floor {floor}x)"
        )
    else:
        t_compiled = None
        compiled_speedup = None
        violations, worst = check_contract(fast, exact)
        print(
            f"  fast: {t_fast:.3f}s   compiled: unavailable (numba not "
            "installed; pip install .[compiled]) — speedup floor WAIVED, "
            "contract checked on the fast fallback"
        )
    print(
        f"  accuracy contract: {violations} violation(s), "
        f"worst |ipc rel err| {worst:.3e}"
    )

    # Thread-pool determinism + threads-vs-processes wall clock, through
    # the real supervised campaign path.
    limit, cores = (2, 3) if args.quick else (3, 4)
    with tempfile.TemporaryDirectory(prefix="bench-kernel-") as tmp:
        tmpdir = Path(tmp)
        d_serial, t_serial = campaign_run(
            tmpdir, "serial.json", workers=1, pool="processes",
            limit=limit, cores=cores,
        )
        d_threads, t_threads = campaign_run(
            tmpdir, "threads.json", workers=args.workers, pool="threads",
            limit=limit, cores=cores,
        )
        d_procs, t_procs = campaign_run(
            tmpdir, "processes.json", workers=args.workers, pool="processes",
            limit=limit, cores=cores,
        )
    digest_match = d_serial == d_threads == d_procs
    thread_ratio = t_procs / t_threads if t_threads > 0 else float("inf")
    print(
        f"  campaign wall: serial {t_serial:.2f}s   "
        f"threads({args.workers}) {t_threads:.2f}s   "
        f"processes({args.workers}) {t_procs:.2f}s   "
        f"threads-vs-processes {thread_ratio:.2f}x"
        + ("" if has_numba else "   (floor WAIVED: no numba)")
    )
    print(
        "  digests: "
        + ("identical across serial/threads/processes"
           if digest_match
           else f"serial={d_serial} threads={d_threads} procs={d_procs}")
    )

    payload = merge_artefact(
        args.bench_json,
        {
            "numba": has_numba,
            "available": list(available_kernels()),
            "compiled_speedup": (
                None if compiled_speedup is None
                else round(compiled_speedup, 3)
            ),
            "fast_wall_s": round(t_fast, 4),
            "compiled_wall_s": (
                None if t_compiled is None else round(t_compiled, 4)
            ),
            "n_points": len(points),
            "quick": args.quick,
            "rounds": args.rounds,
            "contract_violations": violations,
            "worst_ipc_rel_err": float(f"{worst:.6e}"),
            "campaign": {
                "workers": args.workers,
                "serial_wall_s": round(t_serial, 4),
                "threads_wall_s": round(t_threads, 4),
                "processes_wall_s": round(t_procs, 4),
                "threads_vs_processes": round(thread_ratio, 3),
                "digest_match": digest_match,
            },
        },
    )
    ROOT_BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  merged into {args.bench_json} (+ root {ROOT_BENCH_JSON.name})")

    if violations:
        print(f"FAIL: {violations} point(s) broke the accuracy contract")
        return 1
    if not digest_match:
        print("FAIL: thread-pool campaign diverged from serial digest")
        return 1
    if has_numba:
        if compiled_speedup < floor:
            print(
                f"FAIL: compiled speedup {compiled_speedup:.2f}x below "
                f"the {floor}x floor"
            )
            return 1
        if thread_ratio < MIN_THREAD_RATIO:
            print(
                f"FAIL: thread pool {thread_ratio:.2f}x of process pool, "
                f"below the {MIN_THREAD_RATIO}x floor"
            )
            return 1
        print("OK: compiled kernel and thread pool clear their floors "
              "with the contract held")
    else:
        print("OK: contract held and thread pool digest-identical to "
              "serial (speedup floors waived: numba not installed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
