"""Figure 8 — geomean SUCI across SLOs, cores, and lambda in {0.5, 1, 2}.

Paper: DICER dominates UM and CT over the whole grid.
"""

from conftest import publish

from repro.experiments.fig8 import extract_fig8, render_fig8


def bench_fig8(benchmark, grid):
    data = benchmark.pedantic(lambda: extract_fig8(grid), rounds=1, iterations=1)
    publish("fig8", render_fig8(data))
