"""Figure 4 — EFU vs HP slowdown scatter for UM and CT (full server)."""

from conftest import publish

from repro.experiments.fig4 import extract_fig4, render_fig4


def bench_fig4(benchmark, grid):
    data = benchmark.pedantic(
        lambda: extract_fig4(grid, n_cores=max(grid.cores)),
        rounds=1,
        iterations=1,
    )
    publish("fig4", render_fig4(data))
