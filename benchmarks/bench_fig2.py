"""Figure 2 — CDF of the minimum LLC ways for 90/95/99 % of solo peak.

Paper: 50 % of applications reach 99 % of peak with 6 ways; 90 % reach
90 % of peak with 5 ways.
"""

from conftest import FULL, LIMIT, PRECISION, RESULTS_DIR, publish

from repro.experiments.fig2 import render_fig2, run_fig2
from repro.experiments.reporting import fig2_to_csv


def bench_fig2(benchmark):
    data = benchmark.pedantic(
        lambda: run_fig2(limit=LIMIT, precision=PRECISION), rounds=1, iterations=1
    )
    publish("fig2", render_fig2(data))
    out = RESULTS_DIR.parent / ("results_full" if FULL else "results")
    fig2_to_csv(data, out / "fig2.csv")
