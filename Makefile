# Convenience targets for the DICER reproduction.

.PHONY: all install lint test fastmath kernels kernels-ci chaos conformance coverage golden bench bench-quick bench-json bench-full bench-fast bench-fast-quick bench-kernel bench-kernel-quick queue-smoke serve serve-smoke examples clean

.DEFAULT_GOAL := all

all: lint test chaos serve conformance queue-smoke serve-smoke bench-fast-quick bench-kernel-quick

install:
	pip install -e .

lint:             ## ruff, if installed (config in .ruff.toml); skipped otherwise
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/ tests/ benchmarks/ examples/; \
	else \
		echo "lint: ruff not installed, skipping (pip install ruff)"; \
	fi

test:
	pytest tests/

fastmath:         ## fast_math-marked suites (catalog-wide fast-vs-exact sweeps; slow)
	pytest tests/ -m fast_math

kernels:          ## kernels-marked compiled-kernel parity suites (need `pip install .[compiled]`)
	pytest tests/ -m kernels

KERNELS_VENV ?= .venv-kernels

kernels-ci:       ## CI job: provision a venv with the [compiled] extra, then
                  ## run the numba parity suites and the >=2x compiled floor.
                  ## Degrades to a skip (exit 0) when the extra cannot be
                  ## installed (offline / unsupported platform) so NumPy-only
                  ## runners still pass the rest of the pipeline.
	@python -m venv $(KERNELS_VENV) 2>/dev/null || true
	@if $(KERNELS_VENV)/bin/pip install -e '.[compiled]' >/dev/null 2>&1; then \
		echo "kernels-ci: compiled extra installed, running parity gates"; \
		$(KERNELS_VENV)/bin/python -m pytest tests/ -m kernels && \
		PYTHONPATH=src $(KERNELS_VENV)/bin/python benchmarks/bench_kernel.py --quick; \
	else \
		echo "kernels-ci: could not install .[compiled] (offline or"; \
		echo "unsupported platform) — compiled parity suites skipped;"; \
		echo "the pure-NumPy kernels remain covered by 'make test'"; \
	fi

chaos:            ## chaos-marked fault-injection suites (worker crash/hang fuzz; fixed seeds)
	pytest tests/ -m chaos

conformance:      ## controller conformance: differential fuzz + golden replay + fault injection
	pytest tests/valid/ -q
	python -m repro.valid.record --check

golden:           ## regenerate tests/golden/ after an intentional behaviour change
	python -m repro.valid.record

coverage:         ## pytest-cov with a line floor on the controller core; skipped if not installed
	@if python -c "import pytest_cov" >/dev/null 2>&1; then \
		pytest tests/ --cov=repro.core --cov-report=term-missing \
			--cov-fail-under=90; \
	else \
		echo "coverage: pytest-cov not installed, skipping (pip install pytest-cov)"; \
	fi

bench:            ## quick-mode campaign (truncated populations)
	pytest benchmarks/ --benchmark-only

bench-quick:      ## quick-mode campaign + autosave + >25% regression gate + perf artefact
	PYTHONPATH=src pytest benchmarks/ --benchmark-only --benchmark-autosave
	python benchmarks/compare_saves.py --threshold 0.25 \
		--bench-json benchmarks/results/BENCH_headline.json

bench-json:       ## refresh + report benchmarks/results/BENCH_headline.json only
	PYTHONPATH=src pytest benchmarks/bench_headline.py --benchmark-only
	python benchmarks/compare_saves.py \
		--bench-json benchmarks/results/BENCH_headline.json

bench-full:       ## paper-scale campaign (3481 pairs, 120-workload grid)
	REPRO_FULL=1 pytest benchmarks/ --benchmark-only

bench-fast:       ## fast-math speedup gate: full 3481-pair grid, exact vs fast, floor 5x
	PYTHONPATH=src python benchmarks/bench_fast.py

bench-fast-quick: ## fast-math speedup gate on the truncated population (floor 3x)
	PYTHONPATH=src python benchmarks/bench_fast.py --quick

bench-kernel:     ## kernel gate: full grid, compiled-vs-fast + thread-pool digest identity
	PYTHONPATH=src python benchmarks/bench_kernel.py

bench-kernel-quick: ## kernel gate on the truncated population (floors relaxed/waived)
	PYTHONPATH=src python benchmarks/bench_kernel.py --quick

queue-smoke:      ## two-worker shared-queue campaign, digest-checked against serial
	PYTHONPATH=src python benchmarks/queue_smoke.py

serve:            ## serve-marked control-plane integration suites (daemon, API, chaos determinism)
	pytest tests/ -m serve

serve-smoke:      ## seeded 1200-event churn + node chaos + SIGTERM kill/restart, digest-checked
	PYTHONPATH=src python benchmarks/serve_smoke.py

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

clean:
	rm -rf benchmarks/results benchmarks/.benchmarks .benchmarks .pytest_cache $(KERNELS_VENV)
	find . -name __pycache__ -type d -exec rm -rf {} +
